//! The exact, interpreter-backed evaluation backend.

use super::cache::{CacheScope, SharedCache};
use super::{EvalBackend, EvalMetrics};
use crate::config::{AxConfig, SpaceDims};
use ax_operators::metrics::{mae, signed_mean_error};
use ax_operators::OperatorLibrary;
use ax_telemetry::Telemetry;
use ax_vm::compile::{CompiledProgram, CompiledSkeleton};
use ax_vm::exec::{run_from_image, Binding, ExecScratch};
use ax_vm::instrument::VarMask;
use ax_vm::VmError;
use ax_workloads::{PreparedWorkload, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// Which execution engine [`Evaluator`]s spawned from an [`EvalContext`]
/// run cache-missing designs on. Both engines are bit-identical in outputs
/// and profiles; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The threaded-code engine ([`ax_vm::compile`]): designs are
    /// specialised from a shared offset-resolved skeleton and run without
    /// per-instruction flag or cost-table lookups. The default.
    #[default]
    Compiled,
    /// The instrumented interpreter ([`ax_vm::exec::run_from_image`]) —
    /// kept as the reference implementation (`"exact-interpreted"` in
    /// campaign specs) for differential testing and perf baselines.
    Interpreter,
}

/// A cheap-to-clone, `Send + Sync` handle for spawning evaluators of one
/// prepared benchmark.
///
/// The context owns the prepared workload, the precise reference outputs
/// and the operator library behind `Arc`s, plus (optionally) a
/// [`SharedCache`] scope. Cloning it and calling [`EvalContext::evaluator`]
/// on each worker thread is how sweeps fan out: every evaluator shares the
/// preparation work and the design cache, while keeping its own scratch
/// buffers and local memo table.
#[derive(Debug, Clone)]
pub struct EvalContext {
    benchmark: String,
    input_seed: u64,
    prepared: Arc<PreparedWorkload>,
    lib: Arc<OperatorLibrary>,
    dims: SpaceDims,
    /// Initial interpreter memory (inputs bound, temps zeroed), resolved
    /// once per context: each design evaluation replays it with a memcpy
    /// instead of re-binding (and re-cloning) every input vector.
    base_image: Arc<Vec<i64>>,
    /// The program's offset-resolved threaded-code skeleton, built once per
    /// context and shared by every spawned evaluator's compiled engine.
    skeleton: Arc<CompiledSkeleton>,
    engine: ExecEngine,
    precise_outputs: Arc<Vec<f64>>,
    precise_power: f64,
    precise_time: f64,
    shared: Option<(Arc<SharedCache>, CacheScope)>,
    /// Telemetry handle spawned evaluators report through. Disabled by
    /// default: the hot path then pays exactly one branch per execution.
    telemetry: Telemetry,
}

impl EvalContext {
    /// Prepares `workload` with inputs from `input_seed` and runs the
    /// precise reference, without a shared cache.
    ///
    /// # Errors
    ///
    /// Fails if the workload cannot be built, the library lacks operators
    /// at the workload's widths, or the precise run fails.
    pub fn new(
        workload: &dyn Workload,
        lib: Arc<OperatorLibrary>,
        input_seed: u64,
    ) -> Result<Self, VmError> {
        Self::build(workload, lib, input_seed, None)
    }

    /// Like [`EvalContext::new`], but evaluators spawned from this context
    /// share memoised designs through `cache`.
    ///
    /// # Errors
    ///
    /// Same as [`EvalContext::new`].
    pub fn with_cache(
        workload: &dyn Workload,
        lib: Arc<OperatorLibrary>,
        input_seed: u64,
        cache: Arc<SharedCache>,
    ) -> Result<Self, VmError> {
        Self::build(workload, lib, input_seed, Some(cache))
    }

    fn build(
        workload: &dyn Workload,
        lib: Arc<OperatorLibrary>,
        input_seed: u64,
        cache: Option<Arc<SharedCache>>,
    ) -> Result<Self, VmError> {
        let benchmark = workload.name();
        let prepared = workload.prepare(input_seed)?;
        let n_add = lib.adders(prepared.program.add_width()).len();
        let n_mul = lib.multipliers(prepared.program.mul_width()).len();
        if n_add == 0 {
            return Err(VmError::UnsupportedWidth {
                what: "adder",
                width_bits: prepared.program.add_width().bits(),
            });
        }
        if n_mul == 0 {
            return Err(VmError::UnsupportedWidth {
                what: "multiplier",
                width_bits: prepared.program.mul_width().bits(),
            });
        }
        let n_vars = VarMask::none(&prepared.program).len();
        let skeleton = Arc::new(CompiledSkeleton::new(&prepared.program));
        let base_image = prepared.executor()?.initial_memory()?;
        let reference = prepared.run_precise(&lib)?;
        let precise_outputs: Vec<f64> = reference.outputs.iter().map(|&v| v as f64).collect();
        let shared = cache.map(|c| {
            let scope = c.scope(&benchmark, input_seed);
            (c, scope)
        });
        Ok(Self {
            benchmark,
            input_seed,
            prepared: Arc::new(prepared),
            lib,
            dims: SpaceDims {
                n_add,
                n_mul,
                n_vars,
            },
            base_image: Arc::new(base_image),
            skeleton,
            engine: ExecEngine::default(),
            precise_outputs: Arc::new(precise_outputs),
            precise_power: reference.profile.power_mw,
            precise_time: reference.profile.time_ns,
            shared,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Spawns an evaluator sharing this context's preparation and cache.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator {
            mask: VarMask::none(&self.prepared.program),
            compiled: None,
            ctx: self.clone(),
            cache: HashMap::new(),
            hits: 0,
            shared_hits: 0,
            executions: 0,
            scratch: ExecScratch::new(),
        }
    }

    /// This context with a different execution engine; evaluators spawned
    /// afterwards run cache-missing designs on it. The default is
    /// [`ExecEngine::Compiled`].
    #[must_use]
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The execution engine spawned evaluators use.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// This context reporting through `telemetry` (a cheap shared handle):
    /// evaluators spawned afterwards record per-execution latency in the
    /// `exec.latency_ns` histogram. The default is
    /// [`Telemetry::disabled`], which costs one branch per execution.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The telemetry handle spawned evaluators report through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The benchmark's name.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The benchmark input seed this context was prepared with.
    pub fn input_seed(&self) -> u64 {
        self.input_seed
    }

    /// The operator library evaluators bind against.
    pub fn library(&self) -> &Arc<OperatorLibrary> {
        &self.lib
    }

    /// The shared cache, if this context carries one.
    pub fn shared_cache(&self) -> Option<&Arc<SharedCache>> {
        self.shared.as_ref().map(|(c, _)| c)
    }

    /// Derives the Δ metrics of one executed design from its outcome.
    fn metrics_from(&self, outcome: &ax_vm::exec::ExecOutcome) -> EvalMetrics {
        let approx: Vec<f64> = outcome.outputs.iter().map(|&v| v as f64).collect();
        EvalMetrics {
            delta_acc: mae(&self.precise_outputs, &approx),
            delta_power: self.precise_power - outcome.profile.power_mw,
            delta_time: self.precise_time - outcome.profile.time_ns,
            signed_error: signed_mean_error(&self.precise_outputs, &approx),
            power: outcome.profile.power_mw,
            time_ns: outcome.profile.time_ns,
        }
    }
}

/// The exact evaluation backend: runs configurations of one benchmark
/// through the instrumented interpreter against the precise reference,
/// memoising by configuration.
#[derive(Debug)]
pub struct Evaluator {
    ctx: EvalContext,
    cache: HashMap<AxConfig, EvalMetrics>,
    hits: u64,
    shared_hits: u64,
    executions: u64,
    scratch: ExecScratch,
    /// Reused selection mask — rebuilding the variable table per design
    /// would be an allocation on the hot path.
    mask: VarMask,
    /// The compiled engine's specialised program, lazily built from the
    /// context's shared skeleton and re-specialised in place per design
    /// (operator swaps are O(1); mask changes rewrite the opcodes without
    /// allocating). `None` until the first compiled execution.
    compiled: Option<CompiledProgram>,
}

impl Evaluator {
    /// Prepares `workload` with inputs from `input_seed` and runs the
    /// precise reference.
    ///
    /// The library is cloned once into an `Arc`; sweeps spawning many
    /// evaluators should build one [`EvalContext`] instead and share it.
    ///
    /// # Errors
    ///
    /// Fails if the workload cannot be built, the library lacks operators at
    /// the workload's widths, or the precise run fails.
    pub fn new(
        workload: &dyn Workload,
        lib: &OperatorLibrary,
        input_seed: u64,
    ) -> Result<Self, VmError> {
        Ok(EvalContext::new(workload, Arc::new(lib.clone()), input_seed)?.evaluator())
    }

    /// The context this evaluator was spawned from.
    pub fn context(&self) -> &EvalContext {
        &self.ctx
    }

    /// Number of evaluations answered from this evaluator's own cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Number of evaluations answered by the shared cache (designs another
    /// evaluator executed first).
    pub fn shared_cache_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Number of actual interpreter executions this evaluator performed.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// All evaluated configurations with their metrics (for Pareto
    /// analysis and surrogate training harvests), in unspecified order.
    pub fn evaluated(&self) -> Vec<(AxConfig, EvalMetrics)> {
        self.cache.iter().map(|(c, m)| (*c, *m)).collect()
    }

    fn execute(&mut self, config: &AxConfig) -> Result<EvalMetrics, VmError> {
        // One branch when telemetry is disabled — the hot path stays free.
        let started = self.ctx.telemetry.enabled().then(std::time::Instant::now);
        let ctx = &self.ctx;
        let binding = Binding::new(&ctx.lib, &ctx.prepared.program, config.adder, config.mul)?;
        let outcome = match ctx.engine {
            ExecEngine::Compiled => {
                let compiled = match &mut self.compiled {
                    Some(c) => {
                        c.specialize(&binding, config.vars);
                        c
                    }
                    none => none.insert(ctx.skeleton.compile(&binding, config.vars)),
                };
                compiled.run(&ctx.base_image, &mut self.scratch)?
            }
            ExecEngine::Interpreter => {
                self.mask.set_raw_bits(config.vars);
                run_from_image(
                    &ctx.prepared.program,
                    &ctx.base_image,
                    &binding,
                    &self.mask,
                    &mut self.scratch,
                )?
            }
        };
        self.executions += 1;
        if let Some(t0) = started {
            self.ctx
                .telemetry
                .observe("exec.latency_ns", t0.elapsed().as_nanos() as u64);
        }
        Ok(self.ctx.metrics_from(&outcome))
    }
}

impl EvalBackend for Evaluator {
    fn dims(&self) -> SpaceDims {
        self.ctx.dims
    }

    fn program(&self) -> &ax_vm::Program {
        &self.ctx.prepared.program
    }

    fn precise_power(&self) -> f64 {
        self.ctx.precise_power
    }

    fn precise_time(&self) -> f64 {
        self.ctx.precise_time
    }

    fn mean_abs_output(&self) -> f64 {
        self.ctx
            .precise_outputs
            .iter()
            .map(|v| v.abs())
            .sum::<f64>()
            / self.ctx.precise_outputs.len() as f64
    }

    fn distinct_evaluations(&self) -> u64 {
        self.cache.len() as u64
    }

    fn telemetry_counters(&self) -> Vec<(&'static str, u64)> {
        let mut counters = vec![
            ("backend.local_hits", self.hits),
            ("backend.shared_hits", self.shared_hits),
            ("backend.executions", self.executions),
        ];
        match self.ctx.engine {
            ExecEngine::Compiled => counters.push(("engine.compiled_runs", self.executions)),
            ExecEngine::Interpreter => counters.push(("engine.interpreted_runs", self.executions)),
        }
        if let Some(compiled) = &self.compiled {
            let batch = compiled.batch_stats();
            if batch.designs > 0 {
                counters.extend([
                    ("engine.batch.designs", batch.designs),
                    ("engine.batch.groups", batch.groups),
                    ("engine.batch.signature_hits", batch.signature_hits),
                    ("engine.batch.dedup_hits", batch.dedup_hits),
                    ("engine.batch.kernel_designs", batch.kernel_designs),
                    ("engine.batch.sequential_designs", batch.sequential_designs),
                    ("engine.batch.kernel_invocations", batch.kernel_invocations),
                    ("engine.batch.stage1_ns", batch.stage1_ns),
                    ("engine.batch.stage2_ns", batch.stage2_ns),
                ]);
            }
        }
        counters
    }

    /// Evaluates a configuration (cached: local memo table first, then the
    /// shared cache, then the interpreter).
    ///
    /// # Errors
    ///
    /// Propagates execution errors; impossible for validated workloads whose
    /// multiplication operands are program inputs.
    ///
    /// # Panics
    ///
    /// Panics if `config` is outside this benchmark's space.
    fn evaluate(&mut self, config: &AxConfig) -> Result<EvalMetrics, VmError> {
        assert!(
            config.is_valid(self.ctx.dims),
            "configuration {config} outside the space"
        );
        if let Some(m) = self.cache.get(config) {
            self.hits += 1;
            return Ok(*m);
        }
        if let Some((cache, scope)) = &self.ctx.shared {
            if let Some(m) = cache.get(*scope, config) {
                self.shared_hits += 1;
                self.cache.insert(*config, m);
                return Ok(m);
            }
        }
        let metrics = self.execute(config)?;
        self.cache.insert(*config, metrics);
        if let Some((cache, scope)) = &self.ctx.shared {
            cache.insert(*scope, *config, metrics);
        }
        Ok(metrics)
    }

    /// Batched evaluation: configurations the caches cannot answer are
    /// executed (deduplicated) through [`PreparedWorkload::run_batch`],
    /// which binds inputs once and reuses one set of execution buffers
    /// across the whole slice.
    ///
    /// # Errors
    ///
    /// Stops at the first failing configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configuration is outside this benchmark's space.
    fn evaluate_batch(&mut self, configs: &[AxConfig]) -> Result<Vec<EvalMetrics>, VmError> {
        // Pass 1: answer from the caches, collecting the distinct designs
        // that actually need the interpreter. The set mirrors `to_run` so
        // dedup stays O(1) per config and duplicate pending designs don't
        // re-query (and re-count misses against) the shared cache.
        let mut to_run: Vec<AxConfig> = Vec::new();
        let mut pending: std::collections::HashSet<AxConfig> = std::collections::HashSet::new();
        for config in configs {
            assert!(
                config.is_valid(self.ctx.dims),
                "configuration {config} outside the space"
            );
            if self.cache.contains_key(config) {
                self.hits += 1;
                continue;
            }
            if pending.contains(config) {
                continue;
            }
            if let Some((cache, scope)) = &self.ctx.shared {
                if let Some(m) = cache.get(*scope, config) {
                    self.shared_hits += 1;
                    self.cache.insert(*config, m);
                    continue;
                }
            }
            pending.insert(*config);
            to_run.push(*config);
        }

        // Pass 2: execute the misses through this evaluator's amortised
        // machinery — the context's precomputed base image plus the
        // persistent scratch and mask, the same hot path as `evaluate`.
        // (`PreparedWorkload::run_batch` offers the equivalent stand-alone
        // entry point for callers without an `EvalContext`.)
        for config in &to_run {
            let metrics = self.execute(config)?;
            self.cache.insert(*config, metrics);
            if let Some((cache, scope)) = &self.ctx.shared {
                cache.insert(*scope, *config, metrics);
            }
        }

        // Pass 3: assemble in input order from the (now complete) local
        // cache.
        Ok(configs.iter().map(|c| self.cache[c]).collect())
    }
}

// Inherent forwarders so existing `Evaluator` call sites (and ones that
// prefer not to import the trait) keep working unchanged.
impl Evaluator {
    /// See [`EvalBackend::dims`].
    pub fn dims(&self) -> SpaceDims {
        EvalBackend::dims(self)
    }

    /// See [`EvalBackend::program`].
    pub fn program(&self) -> &ax_vm::Program {
        EvalBackend::program(self)
    }

    /// See [`EvalBackend::precise_power`].
    pub fn precise_power(&self) -> f64 {
        EvalBackend::precise_power(self)
    }

    /// See [`EvalBackend::precise_time`].
    pub fn precise_time(&self) -> f64 {
        EvalBackend::precise_time(self)
    }

    /// See [`EvalBackend::mean_abs_output`].
    pub fn mean_abs_output(&self) -> f64 {
        EvalBackend::mean_abs_output(self)
    }

    /// See [`EvalBackend::distinct_evaluations`].
    pub fn distinct_evaluations(&self) -> u64 {
        EvalBackend::distinct_evaluations(self)
    }

    /// See [`EvalBackend::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    ///
    /// # Panics
    ///
    /// Panics if `config` is outside this benchmark's space.
    pub fn evaluate(&mut self, config: &AxConfig) -> Result<EvalMetrics, VmError> {
        EvalBackend::evaluate(self, config)
    }

    /// See [`EvalBackend::evaluate_batch`].
    ///
    /// # Errors
    ///
    /// Stops at the first failing configuration.
    pub fn evaluate_batch(&mut self, configs: &[AxConfig]) -> Result<Vec<EvalMetrics>, VmError> {
        EvalBackend::evaluate_batch(self, configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ax_operators::{AdderId, MulId};
    use ax_workloads::dot::DotProduct;
    use ax_workloads::matmul::MatMul;

    fn evaluator() -> Evaluator {
        let lib = OperatorLibrary::evoapprox();
        Evaluator::new(&MatMul::new(4), &lib, 11).unwrap()
    }

    #[test]
    fn precise_config_has_zero_deltas() {
        let mut ev = evaluator();
        let m = ev.evaluate(&AxConfig::precise()).unwrap();
        assert_eq!(m.delta_acc, 0.0);
        assert_eq!(m.delta_power, 0.0);
        assert_eq!(m.delta_time, 0.0);
        assert_eq!(m.signed_error, 0.0);
        assert_eq!(m.power, ev.precise_power());
    }

    #[test]
    fn empty_mask_with_approx_operators_still_precise() {
        // No variables selected -> nothing routed through the approximate
        // operators, regardless of the configured adder/multiplier.
        let mut ev = evaluator();
        let m = ev
            .evaluate(&AxConfig {
                adder: AdderId(5),
                mul: MulId(5),
                vars: 0,
            })
            .unwrap();
        assert_eq!(m.delta_acc, 0.0);
        assert_eq!(m.delta_power, 0.0);
    }

    #[test]
    fn full_approximation_maximises_power_saving() {
        let mut ev = evaluator();
        let dims = ev.dims();
        let full = AxConfig {
            adder: AdderId(dims.n_add - 1),
            mul: MulId(dims.n_mul - 1),
            vars: (1 << dims.n_vars) - 1,
        };
        let m_full = ev.evaluate(&full).unwrap();
        // Every other configuration saves at most as much power.
        for c in AxConfig::enumerate(dims) {
            let m = ev.evaluate(&c).unwrap();
            assert!(m.delta_power <= m_full.delta_power + 1e-9, "{c}");
        }
        assert!(m_full.delta_acc > 0.0);
    }

    #[test]
    fn cache_hits_are_counted() {
        let mut ev = evaluator();
        let c = AxConfig {
            adder: AdderId(1),
            mul: MulId(1),
            vars: 0b11,
        };
        ev.evaluate(&c).unwrap();
        assert_eq!(ev.distinct_evaluations(), 1);
        assert_eq!(ev.cache_hits(), 0);
        assert_eq!(ev.executions(), 1);
        ev.evaluate(&c).unwrap();
        assert_eq!(ev.distinct_evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
        assert_eq!(ev.executions(), 1);
    }

    #[test]
    fn dims_match_library_and_program() {
        let ev = evaluator();
        let dims = ev.dims();
        assert_eq!(dims.n_add, 6);
        assert_eq!(dims.n_mul, 6);
        assert_eq!(dims.n_vars, 4); // a, b, prod, c
    }

    #[test]
    fn mean_abs_output_is_positive() {
        let ev = evaluator();
        assert!(ev.mean_abs_output() > 0.0);
    }

    #[test]
    fn works_for_single_output_workload() {
        let lib = OperatorLibrary::evoapprox();
        let mut ev = Evaluator::new(&DotProduct::new(6), &lib, 3).unwrap();
        let m = ev
            .evaluate(&AxConfig {
                adder: AdderId(4),
                mul: MulId(4),
                vars: 0b1111,
            })
            .unwrap();
        assert!(m.delta_power > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the space")]
    fn invalid_config_rejected() {
        let mut ev = evaluator();
        let _ = ev.evaluate(&AxConfig {
            adder: AdderId(9),
            mul: MulId(0),
            vars: 0,
        });
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let mut a = evaluator();
        let mut b = evaluator();
        let configs: Vec<AxConfig> = AxConfig::enumerate(a.dims()).into_iter().take(40).collect();
        let batch = a.evaluate_batch(&configs).unwrap();
        for (c, m) in configs.iter().zip(&batch) {
            assert_eq!(*m, b.evaluate(c).unwrap(), "{c}");
        }
    }

    #[test]
    fn batch_deduplicates_and_reuses_caches() {
        let mut ev = evaluator();
        let c1 = AxConfig {
            adder: AdderId(1),
            mul: MulId(2),
            vars: 0b11,
        };
        let c2 = AxConfig {
            adder: AdderId(3),
            mul: MulId(4),
            vars: 0b01,
        };
        ev.evaluate(&c1).unwrap();
        // A batch with a repeat and an already-cached design executes only
        // the genuinely new configuration.
        let batch = ev.evaluate_batch(&[c1, c2, c2, c1]).unwrap();
        assert_eq!(ev.executions(), 2);
        assert_eq!(ev.cache_hits(), 2, "c1 twice from the local cache");
        assert_eq!(batch[0], batch[3]);
        assert_eq!(batch[1], batch[2]);
    }

    #[test]
    fn shared_cache_serves_second_evaluator() {
        let lib = Arc::new(OperatorLibrary::evoapprox());
        let cache = SharedCache::new();
        let ctx = EvalContext::with_cache(&MatMul::new(4), lib, 11, Arc::clone(&cache)).unwrap();
        let c = AxConfig {
            adder: AdderId(2),
            mul: MulId(3),
            vars: 0b101,
        };

        let mut first = ctx.evaluator();
        let m1 = first.evaluate(&c).unwrap();
        assert_eq!(first.executions(), 1);
        assert_eq!(cache.len(), 1);

        let mut second = ctx.evaluator();
        let m2 = second.evaluate(&c).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(
            second.executions(),
            0,
            "design must come from the shared cache"
        );
        assert_eq!(second.shared_cache_hits(), 1);
    }

    #[test]
    fn shared_cache_scopes_isolate_input_seeds() {
        let lib = Arc::new(OperatorLibrary::evoapprox());
        let cache = SharedCache::new();
        let wl = MatMul::new(4);
        let ctx_a = EvalContext::with_cache(&wl, Arc::clone(&lib), 1, Arc::clone(&cache)).unwrap();
        let ctx_b = EvalContext::with_cache(&wl, Arc::clone(&lib), 2, Arc::clone(&cache)).unwrap();
        let c = AxConfig {
            adder: AdderId(5),
            mul: MulId(5),
            vars: 0b1111,
        };
        let ma = ctx_a.evaluator().evaluate(&c).unwrap();
        let mut eb = ctx_b.evaluator();
        let mb = eb.evaluate(&c).unwrap();
        // Different inputs -> the second evaluator must execute, not reuse.
        assert_eq!(eb.executions(), 1);
        assert_eq!(cache.len(), 2);
        // And (with different input data) the observed error differs.
        assert_ne!(ma.delta_acc, mb.delta_acc);
    }

    #[test]
    fn shared_cache_is_send_sync_and_concurrent() {
        let lib = Arc::new(OperatorLibrary::evoapprox());
        let cache = SharedCache::new();
        let ctx = EvalContext::with_cache(&MatMul::new(4), lib, 7, Arc::clone(&cache)).unwrap();
        let configs = AxConfig::enumerate(ctx.evaluator().dims());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = ctx.clone();
                let configs = &configs;
                s.spawn(move || {
                    let mut ev = ctx.evaluator();
                    for c in configs {
                        ev.evaluate(c).unwrap();
                    }
                });
            }
        });
        // All threads agree on one memo table of the whole space.
        assert_eq!(cache.len(), configs.len());
        assert!(cache.hits() > 0);
    }

    #[test]
    fn bounded_shared_cache_still_serves_evaluators() {
        // A tightly bounded cache evicts aggressively yet never changes
        // results — designs just get re-executed after eviction.
        let lib = Arc::new(OperatorLibrary::evoapprox());
        let cache = SharedCache::with_capacity(2, 8);
        let ctx = EvalContext::with_cache(&MatMul::new(4), lib, 11, Arc::clone(&cache)).unwrap();
        let mut reference = ctx.evaluator();
        let mut bounded = ctx.evaluator();
        for c in AxConfig::enumerate(ctx.evaluator().dims())
            .into_iter()
            .take(100)
        {
            assert_eq!(
                bounded.evaluate(&c).unwrap(),
                reference.evaluate(&c).unwrap(),
                "{c}"
            );
            assert!(cache.len() <= cache.capacity().unwrap());
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn eval_context_handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext>();
        assert_send_sync::<SharedCache>();
        assert_send_sync::<Evaluator>();
    }
}
