//! Plain-text table rendering and CSV output.
//!
//! The reproduction binaries print paper-style tables to stdout and dump the
//! raw series as CSV next to them; both formats are produced here without
//! external dependencies.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders an aligned ASCII table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// ```
/// let text = ax_dse::report::ascii_table(
///     &["op", "MRED"],
///     &[vec!["1HG".into(), "0.00".into()], vec!["6PT".into(), "0.14".into()]],
/// );
/// assert!(text.contains("| op  | MRED |"));
/// ```
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "row {i} has {} cells, want {}",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    rule(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

/// Serialises rows as CSV (comma-separated, quoted only when needed).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes CSV content to a file, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, csv(headers, rows))
}

/// Renders a numeric series as a compact ASCII line chart (the terminal
/// stand-in for the paper's figures).
///
/// The series is bucketed into `width` columns (bucket mean) and drawn over
/// `height` rows between the series' min and max. Returns an empty string
/// for an empty series.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
///
/// ```
/// let chart = ax_dse::report::ascii_chart(&[0.0, 1.0, 2.0, 3.0], 4, 2);
/// assert_eq!(chart.lines().count(), 3); // 2 rows + axis
/// ```
pub fn ascii_chart(series: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "chart dimensions must be positive");
    if series.is_empty() {
        return String::new();
    }
    let cols = width.min(series.len());
    let chunk = series.len().div_ceil(cols);
    let buckets: Vec<f64> = series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let lo = buckets.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = buckets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; buckets.len()]; height];
    for (x, &v) in buckets.iter().enumerate() {
        let level = (((v - lo) / span) * (height - 1) as f64).round() as usize;
        grid[height - 1 - level][x] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>10.2} |")
        } else if i == height - 1 {
            format!("{lo:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = write!(out, "{:>10} +{}", "", "-".repeat(buckets.len()));
    out.push('\n');
    out
}

/// Formats a float the way the paper's tables do: up to three decimals,
/// trailing zeros trimmed.
pub fn fmt_metric(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = ascii_table(
            &["name", "v"],
            &[
                vec!["longer-name".into(), "1".into()],
                vec!["x".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
        assert!(t.contains("| longer-name | 1  |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn table_rejects_ragged_rows() {
        ascii_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let c = csv(&["a", "b"], &[vec!["x,y".into(), "say \"hi\"".into()]]);
        assert_eq!(c, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let c = csv(&["h"], &[vec!["plain".into()]]);
        assert_eq!(c, "h\nplain\n");
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("axdse-report-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.csv");
        write_csv(&path, &["x"], &[vec!["1".into()]]).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chart_has_requested_shape() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
        let chart = ascii_chart(&series, 40, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 9); // 8 rows + axis
        assert!(lines[0].contains('|'));
        assert!(lines[8].contains('+'));
        // One point per bucket; bucketing 100 samples into at most 40
        // columns uses ceil(100 / ceil(100/40)) = 34 buckets.
        let stars: usize = chart.chars().filter(|&c| c == '*').count();
        let expected = 100usize.div_ceil(100usize.div_ceil(40));
        assert_eq!(stars, expected);
    }

    #[test]
    fn chart_handles_flat_and_short_series() {
        let flat = ascii_chart(&[5.0; 10], 20, 4);
        assert!(flat.contains('*'));
        let short = ascii_chart(&[1.0, 2.0], 50, 3);
        assert_eq!(short.chars().filter(|&c| c == '*').count(), 2);
        assert_eq!(ascii_chart(&[], 10, 3), "");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chart_rejects_zero_dims() {
        ascii_chart(&[1.0], 0, 5);
    }

    #[test]
    fn fmt_metric_trims() {
        assert_eq!(fmt_metric(415.300), "415.3");
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(1552.017), "1552.017");
        assert_eq!(fmt_metric(-90.0), "-90");
        assert_eq!(fmt_metric(10850.855), "10850.855");
    }
}
