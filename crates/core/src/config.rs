//! The design point: an approximate configuration.

use ax_operators::{AdderId, MulId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of the design space: which adder, which multiplier, and which
/// variables are approximated (a bit per approximable variable, the paper's
/// `variables_approx` boolean vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxConfig {
    /// Selected adder (index into the width class, increasing MRED).
    pub adder: AdderId,
    /// Selected multiplier (index into the width class, increasing MRED).
    pub mul: MulId,
    /// Variable-selection bits (bit `i` = `i`-th approximable variable).
    pub vars: u64,
}

/// Dimensions of a configuration space: number of adders, multipliers and
/// approximable variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceDims {
    /// Adders in the applicable width class.
    pub n_add: usize,
    /// Multipliers in the applicable width class.
    pub n_mul: usize,
    /// Approximable variables of the benchmark.
    pub n_vars: u32,
}

impl SpaceDims {
    /// Total number of configurations (`n_add · n_mul · 2^n_vars`).
    pub fn cardinality(&self) -> u128 {
        (self.n_add as u128) * (self.n_mul as u128) * (1u128 << self.n_vars)
    }

    /// Number of environment actions (`n_add + n_mul + n_vars`).
    pub fn action_count(&self) -> usize {
        self.n_add + self.n_mul + self.n_vars as usize
    }

    fn var_mask(&self) -> u64 {
        if self.n_vars == 64 {
            u64::MAX
        } else {
            (1u64 << self.n_vars) - 1
        }
    }
}

impl AxConfig {
    /// The fully precise configuration (exact operators, nothing selected).
    pub fn precise() -> Self {
        Self {
            adder: AdderId(0),
            mul: MulId(0),
            vars: 0,
        }
    }

    /// `true` if this is the paper's terminal configuration: the most
    /// approximated adder and multiplier with every variable selected.
    pub fn is_fully_approximate(&self, dims: SpaceDims) -> bool {
        self.adder.0 == dims.n_add - 1
            && self.mul.0 == dims.n_mul - 1
            && self.vars == dims.var_mask()
    }

    /// Number of selected variables.
    pub fn selected_vars(&self) -> u32 {
        self.vars.count_ones()
    }

    /// `true` if the configuration lies within the space dimensions.
    pub fn is_valid(&self, dims: SpaceDims) -> bool {
        self.adder.0 < dims.n_add && self.mul.0 < dims.n_mul && self.vars & !dims.var_mask() == 0
    }

    /// A uniformly random configuration.
    pub fn random(dims: SpaceDims, rng: &mut StdRng) -> Self {
        Self {
            adder: AdderId(rng.gen_range(0..dims.n_add)),
            mul: MulId(rng.gen_range(0..dims.n_mul)),
            vars: rng.gen::<u64>() & dims.var_mask(),
        }
    }

    /// A single-mutation neighbour: change the adder, change the multiplier,
    /// or toggle one variable — the environment's action granularity.
    pub fn neighbor(&self, dims: SpaceDims, rng: &mut StdRng) -> Self {
        let mut next = *self;
        match rng.gen_range(0..3) {
            0 if dims.n_add > 1 => {
                let mut a = rng.gen_range(0..dims.n_add);
                if a == self.adder.0 {
                    a = (a + 1) % dims.n_add;
                }
                next.adder = AdderId(a);
            }
            1 if dims.n_mul > 1 => {
                let mut m = rng.gen_range(0..dims.n_mul);
                if m == self.mul.0 {
                    m = (m + 1) % dims.n_mul;
                }
                next.mul = MulId(m);
            }
            _ if dims.n_vars > 0 => {
                next.vars ^= 1 << rng.gen_range(0..dims.n_vars);
            }
            _ => {}
        }
        next
    }

    /// Uniform crossover of two configurations (for the genetic baseline).
    pub fn crossover(&self, other: &Self, dims: SpaceDims, rng: &mut StdRng) -> Self {
        let mix: u64 = rng.gen::<u64>() & dims.var_mask();
        Self {
            adder: if rng.gen() { self.adder } else { other.adder },
            mul: if rng.gen() { self.mul } else { other.mul },
            vars: (self.vars & mix) | (other.vars & !mix),
        }
    }

    /// Every configuration of the space, adder-major. Use only for small
    /// spaces (exhaustive ablations).
    ///
    /// # Panics
    ///
    /// Panics if the space has more than 2^20 configurations.
    pub fn enumerate(dims: SpaceDims) -> Vec<AxConfig> {
        assert!(
            dims.cardinality() <= 1 << 20,
            "space too large to enumerate"
        );
        let mut all = Vec::with_capacity(dims.cardinality() as usize);
        for a in 0..dims.n_add {
            for m in 0..dims.n_mul {
                for bits in 0..(1u64 << dims.n_vars) {
                    all.push(AxConfig {
                        adder: AdderId(a),
                        mul: MulId(m),
                        vars: bits,
                    });
                }
            }
        }
        all
    }
}

impl fmt::Display for AxConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(adder {}, mul {}, vars {:b})",
            self.adder, self.mul, self.vars
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const DIMS: SpaceDims = SpaceDims {
        n_add: 6,
        n_mul: 6,
        n_vars: 4,
    };

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn cardinality_and_actions() {
        assert_eq!(DIMS.cardinality(), 6 * 6 * 16);
        assert_eq!(DIMS.action_count(), 16);
    }

    #[test]
    fn precise_config_properties() {
        let c = AxConfig::precise();
        assert_eq!(c.selected_vars(), 0);
        assert!(c.is_valid(DIMS));
        assert!(!c.is_fully_approximate(DIMS));
    }

    #[test]
    fn fully_approximate_detection() {
        let c = AxConfig {
            adder: AdderId(5),
            mul: MulId(5),
            vars: 0b1111,
        };
        assert!(c.is_fully_approximate(DIMS));
        let c2 = AxConfig {
            adder: AdderId(5),
            mul: MulId(5),
            vars: 0b0111,
        };
        assert!(!c2.is_fully_approximate(DIMS));
    }

    #[test]
    fn random_configs_are_valid() {
        let mut r = rng();
        for _ in 0..200 {
            assert!(AxConfig::random(DIMS, &mut r).is_valid(DIMS));
        }
    }

    #[test]
    fn neighbor_changes_exactly_one_axis() {
        let mut r = rng();
        let c = AxConfig {
            adder: AdderId(2),
            mul: MulId(3),
            vars: 0b0101,
        };
        for _ in 0..200 {
            let n = c.neighbor(DIMS, &mut r);
            assert!(n.is_valid(DIMS));
            let changed = [n.adder != c.adder, n.mul != c.mul, n.vars != c.vars]
                .iter()
                .filter(|&&x| x)
                .count();
            assert_eq!(changed, 1, "{c} -> {n}");
            if n.vars != c.vars {
                assert_eq!((n.vars ^ c.vars).count_ones(), 1);
            }
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let mut r = rng();
        let a = AxConfig {
            adder: AdderId(0),
            mul: MulId(0),
            vars: 0b0000,
        };
        let b = AxConfig {
            adder: AdderId(5),
            mul: MulId(5),
            vars: 0b1111,
        };
        for _ in 0..100 {
            let c = a.crossover(&b, DIMS, &mut r);
            assert!(c.is_valid(DIMS));
            assert!(c.adder == a.adder || c.adder == b.adder);
            assert!(c.mul == a.mul || c.mul == b.mul);
        }
    }

    #[test]
    fn enumerate_covers_space_without_duplicates() {
        let all = AxConfig::enumerate(DIMS);
        assert_eq!(all.len(), 576);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 576);
        assert!(all.iter().all(|c| c.is_valid(DIMS)));
    }
}
