//! Diagnostic sweeps over the full configuration space (ignored by default;
//! run with `cargo test -p ax-dse --release -- --ignored --nocapture`).

use ax_dse::config::AxConfig;
use ax_dse::reward::{reward, RewardParams};
use ax_dse::thresholds::ThresholdRule;
use ax_dse::Evaluator;
use ax_operators::OperatorLibrary;
use ax_workloads::fir::Fir;
use ax_workloads::matmul::MatMul;
use ax_workloads::Workload;

fn classify(workload: &dyn Workload, max_reward: f64) {
    let lib = OperatorLibrary::evoapprox();
    let mut ev = Evaluator::new(workload, &lib, 42).unwrap();
    let th = ThresholdRule::paper().calibrate(&ev);
    let params = RewardParams::new(max_reward, th);
    let dims = ev.dims();
    let (mut plus, mut minus, mut violate, mut terminal) = (0u32, 0u32, 0u32, 0u32);
    let mut best_feasible: Option<(AxConfig, f64, f64, f64)> = None;
    for c in AxConfig::enumerate(dims) {
        let m = ev.evaluate(&c).unwrap();
        let (r, t) = reward(&c, dims, &m, &params);
        if t {
            terminal += 1;
        } else if r > 0.5 {
            plus += 1;
            let score = m.delta_power + m.delta_time;
            if best_feasible.is_none_or(|(_, s, _, _)| score > s) {
                best_feasible = Some((c, score, m.delta_power, m.delta_acc));
            }
        } else if r < -1.5 {
            violate += 1;
        } else {
            minus += 1;
        }
    }
    println!(
        "{}: acc_th {:.2} p_th {:.2} t_th {:.2} | +1: {plus}  -1: {minus}  -R: {violate}  R: {terminal}",
        workload.name(),
        th.acc_th,
        th.power_th,
        th.time_th
    );
    if let Some((c, _, dp, da)) = best_feasible {
        println!("  best +1 config: {c} (d-power {dp:.1}, acc {da:.1})");
    }
}

#[test]
#[ignore = "diagnostic: prints reward-class distribution over the whole space"]
fn reward_landscape() {
    classify(&MatMul::new(10), 100.0);
    classify(&Fir::new(100), 100.0);
}

#[test]
#[ignore = "diagnostic: prints stop step per hyper-parameter combination"]
fn stop_steps_by_hyperparams() {
    use ax_agents::schedule::Schedule;
    use ax_dse::backend::EvalContext;
    use ax_dse::explore::{AgentKind, ExploreOptions};
    use std::sync::Arc;

    let lib = OperatorLibrary::evoapprox();
    let combos: Vec<(&str, Schedule, Schedule, f64)> = vec![
        (
            "eps.05 a.1 R100",
            Schedule::Constant(0.05),
            Schedule::Constant(0.1),
            100.0,
        ),
        (
            "eps.05 a.5 R100",
            Schedule::Constant(0.05),
            Schedule::Constant(0.5),
            100.0,
        ),
        (
            "exp.3 a.5 R100",
            Schedule::Exponential {
                start: 0.3,
                end: 0.02,
                decay: 0.99,
            },
            Schedule::Constant(0.5),
            100.0,
        ),
        (
            "exp.3 a.5 R50",
            Schedule::Exponential {
                start: 0.3,
                end: 0.02,
                decay: 0.99,
            },
            Schedule::Constant(0.5),
            50.0,
        ),
        (
            "exp.3 a.5 R20",
            Schedule::Exponential {
                start: 0.3,
                end: 0.02,
                decay: 0.99,
            },
            Schedule::Constant(0.5),
            20.0,
        ),
        (
            "eps.02 a.5 R50",
            Schedule::Constant(0.02),
            Schedule::Constant(0.5),
            50.0,
        ),
    ];
    for wl in [&MatMul::new(10) as &dyn Workload, &Fir::new(100)] {
        for (name, eps, alpha, r) in &combos {
            let opts = ExploreOptions {
                max_steps: 10_000,
                max_reward: *r,
                epsilon: *eps,
                alpha: *alpha,
                ..Default::default()
            };
            let ctx = EvalContext::new(wl, Arc::new(lib.clone()), opts.input_seed).unwrap();
            let o = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);
            println!(
                "{:<14} {:<16} stop {:?} at {} steps, cum {:.0}, solution {} + {}",
                wl.name(),
                name,
                o.stop_reason,
                o.summary.steps,
                o.log.total_reward(),
                o.summary.adder_name,
                o.summary.mul_name,
            );
        }
    }
}
