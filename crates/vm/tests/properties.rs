//! Property-based tests over randomly generated straight-line programs.
//!
//! A reference interpreter over plain `i64` arithmetic serves as the oracle
//! for precise execution; approximate execution is checked against
//! structural invariants (cost accounting, error confinement).

use ax_operators::{AdderId, BitWidth, MulId, OperatorLibrary};
use ax_vm::exec::{Binding, Executor};
use ax_vm::instrument::{instruction_flags, VarMask};
use ax_vm::ir::{Instr, Program, ProgramBuilder, Slot, VarId};
use proptest::prelude::*;

/// A randomly generated program description: variable lengths plus an
/// instruction recipe over them.
#[derive(Debug, Clone)]
struct ProgramSpec {
    input_len: u32,
    temp_len: u32,
    output_len: u32,
    /// (kind, dst, a, b) with indices resolved modulo the variable lengths.
    ops: Vec<(u8, u32, u32, u32)>,
    inputs: Vec<i64>,
}

fn arb_spec() -> impl Strategy<Value = ProgramSpec> {
    (1u32..5, 1u32..4, 1u32..5)
        .prop_flat_map(|(input_len, temp_len, output_len)| {
            let ops = prop::collection::vec((0u8..4, 0u32..16, 0u32..16, 0u32..16), 1..24);
            let inputs = prop::collection::vec(0i64..16, input_len as usize);
            (Just((input_len, temp_len, output_len)), ops, inputs)
        })
        .prop_map(
            |((input_len, temp_len, output_len), ops, inputs)| ProgramSpec {
                input_len,
                temp_len,
                output_len,
                ops,
                inputs,
            },
        )
}

/// Builds the program plus a parallel "oracle recipe" of resolved slots.
fn build(spec: &ProgramSpec) -> Program {
    let mut pb = ProgramBuilder::new("random", BitWidth::W8, BitWidth::W8);
    let x = pb.input("x", spec.input_len);
    let t = pb.temp("t", spec.temp_len);
    let y = pb.output("y", spec.output_len);
    for &(kind, d, a, b) in &spec.ops {
        let dst = resolve_writable(spec, t, y, d);
        let sa = resolve_any(spec, x, t, y, a);
        let sb = resolve_any(spec, x, t, y, b);
        match kind {
            0 => {
                pb.konst(dst, (a % 16) as i64);
            }
            1 => {
                pb.copy(dst, sa);
            }
            2 => {
                pb.add(dst, sa, sb);
            }
            _ => {
                pb.mul(dst, sa, sb, 0);
            }
        }
    }
    pb.build().expect("generated program is structurally valid")
}

fn resolve_writable(spec: &ProgramSpec, t: VarId, y: VarId, idx: u32) -> Slot {
    let total = spec.temp_len + spec.output_len;
    let i = idx % total;
    if i < spec.temp_len {
        t.at(i)
    } else {
        y.at(i - spec.temp_len)
    }
}

fn resolve_any(spec: &ProgramSpec, x: VarId, t: VarId, y: VarId, idx: u32) -> Slot {
    let total = spec.input_len + spec.temp_len + spec.output_len;
    let i = idx % total;
    if i < spec.input_len {
        x.at(i)
    } else if i < spec.input_len + spec.temp_len {
        t.at(i - spec.input_len)
    } else {
        y.at(i - spec.input_len - spec.temp_len)
    }
}

/// Plain-i64 oracle for the precise semantics. Mul operands are checked the
/// same way the interpreter does; programs whose values outgrow the 8-bit
/// multiplier are discarded by the caller.
fn oracle(program: &Program, inputs: &[i64]) -> Option<Vec<i64>> {
    let mut mem = vec![0i64; program.total_cells() as usize];
    let x = program.var_by_name("x").unwrap();
    let base = program.offset_of(x);
    mem[base..base + inputs.len()].copy_from_slice(inputs);
    for instr in program.instrs() {
        match *instr {
            Instr::Const { dst, value } => mem[program.offset_of_slot(dst)] = value,
            Instr::Copy { dst, src } => {
                mem[program.offset_of_slot(dst)] = mem[program.offset_of_slot(src)]
            }
            Instr::Add { dst, a, b } => {
                mem[program.offset_of_slot(dst)] =
                    mem[program.offset_of_slot(a)] + mem[program.offset_of_slot(b)]
            }
            Instr::Mul { dst, a, b, shift } => {
                let (va, vb) = (
                    mem[program.offset_of_slot(a)],
                    mem[program.offset_of_slot(b)],
                );
                if va.unsigned_abs() > 255 || vb.unsigned_abs() > 255 {
                    return None;
                }
                mem[program.offset_of_slot(dst)] = (va * vb) >> shift;
            }
        }
    }
    let y = program.var_by_name("y").unwrap();
    let base = program.offset_of(y);
    let len = program.var(y).len() as usize;
    Some(mem[base..base + len].to_vec())
}

/// Test-only helpers mirroring the crate-private offset computation.
trait OffsetExt {
    fn offset_of(&self, var: VarId) -> usize;
    fn offset_of_slot(&self, slot: Slot) -> usize;
}

impl OffsetExt for Program {
    fn offset_of(&self, var: VarId) -> usize {
        let mut off = 0usize;
        for (i, decl) in self.vars().iter().enumerate() {
            if i == var.index() {
                return off;
            }
            off += decl.len() as usize;
        }
        unreachable!("variable out of range")
    }

    fn offset_of_slot(&self, slot: Slot) -> usize {
        self.offset_of(slot.var) + slot.idx as usize
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Precise execution of any generated program matches the i64 oracle.
    #[test]
    fn precise_execution_matches_oracle(spec in arb_spec()) {
        let program = build(&spec);
        let Some(expect) = oracle(&program, &spec.inputs) else {
            return Ok(()); // values outgrew the multiplier width
        };
        let lib = OperatorLibrary::evoapprox();
        let binding = Binding::precise(&lib, &program).unwrap();
        let out = Executor::new(&program)
            .with_input("x", &spec.inputs)
            .unwrap()
            .run(&binding, &VarMask::none(&program));
        // The interpreter may reject the same overflow the oracle allowed
        // through intermediate wrap differences; both must agree when Ok.
        if let Ok(out) = out {
            prop_assert_eq!(out.outputs, expect);
        }
    }

    /// Cost accounting counts exactly the arithmetic instructions, with the
    /// approximate share matching the instrumentation flags.
    #[test]
    fn cost_counts_match_flags(spec in arb_spec(), mask_bits in 0u64..8) {
        let program = build(&spec);
        let lib = OperatorLibrary::evoapprox();
        let mask_bits = mask_bits % (1 << VarMask::none(&program).len().min(6));
        let mask = VarMask::with_bits(&program, mask_bits);
        let flags = instruction_flags(&program, &mask);
        let binding = Binding::new(&lib, &program, AdderId(3), MulId(3)).unwrap();
        let run = Executor::new(&program)
            .with_input("x", &spec.inputs)
            .unwrap()
            .run(&binding, &mask);
        let Ok(out) = run else { return Ok(()); };

        let stats = program.stats();
        prop_assert_eq!(out.profile.adds_total + out.profile.muls_total,
            (stats.adds + stats.muls) as u64);
        let flagged: u64 = program
            .instrs()
            .iter()
            .zip(&flags)
            .filter(|(i, &f)| i.is_arith() && f)
            .count() as u64;
        prop_assert_eq!(out.profile.adds_approx + out.profile.muls_approx, flagged);
    }

    /// With no variables selected, any operator binding behaves precisely
    /// and costs exactly the precise constants.
    #[test]
    fn empty_mask_is_always_precise(spec in arb_spec(), adder in 0usize..6, mul in 0usize..6) {
        let program = build(&spec);
        let lib = OperatorLibrary::evoapprox();
        let precise = Binding::precise(&lib, &program).unwrap();
        let approx = Binding::new(&lib, &program, AdderId(adder), MulId(mul)).unwrap();
        let none = VarMask::none(&program);
        let mut ex = Executor::new(&program).with_input("x", &spec.inputs).unwrap();
        let (a, b) = (ex.run(&precise, &none), ex.run(&approx, &none));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.outputs, b.outputs);
                prop_assert!((a.profile.power_mw - b.profile.power_mw).abs() < 1e-12);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "divergent results: {a:?} vs {b:?}"),
        }
    }
}
