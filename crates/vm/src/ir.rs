//! The kernel intermediate representation.
//!
//! Programs are straight-line sequences of instructions over **named
//! variables** (scalars or arrays of `i64` cells). Every arithmetic
//! instruction records which variables it touches, which is what the paper's
//! instrumentation keys on: selecting a variable approximates *all sums or
//! multiplications on that variable*.
//!
//! Control flow is resolved at build time: benchmark generators emit the
//! fully unrolled instruction stream (loops run in the Rust builder, not the
//! interpreter), keeping the interpreter trivial and the per-instruction
//! approximation flags static.

use crate::error::VmError;
use ax_operators::BitWidth;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a program variable (index into the variable table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A [`Slot`] addressing element `idx` of this variable.
    pub fn at(self, idx: u32) -> Slot {
        Slot { var: self, idx }
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A static storage location: one element of one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// The variable owning the element.
    pub var: VarId,
    /// Element index within the variable (0 for scalars).
    pub idx: u32,
}

/// Role of a variable in the program interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarRole {
    /// Filled by the caller before execution.
    Input,
    /// Read back after execution, in declaration order.
    Output,
    /// Internal scratch storage, zero-initialised.
    Temp,
}

/// Declaration record of one program variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VarDecl {
    name: String,
    len: u32,
    role: VarRole,
    approximable: bool,
}

impl VarDecl {
    /// The variable's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if the variable holds no elements (never true for built
    /// programs — the builder rejects empty variables).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The variable's interface role.
    pub fn role(&self) -> VarRole {
        self.role
    }

    /// `true` if the DSE may select this variable for approximation.
    pub fn approximable(&self) -> bool {
        self.approximable
    }
}

/// One straight-line instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst <- value`
    Const {
        /// Destination element.
        dst: Slot,
        /// Immediate value.
        value: i64,
    },
    /// `dst <- src`
    Copy {
        /// Destination element.
        dst: Slot,
        /// Source element.
        src: Slot,
    },
    /// `dst <- a + b` through the bound adder at the program's add width.
    Add {
        /// Destination element.
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// `dst <- (a * b) >> shift` through the bound multiplier at the
    /// program's multiply width (arithmetic shift; `shift` implements
    /// fixed-point rescaling such as Q15).
    Mul {
        /// Destination element.
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
        /// Arithmetic right shift applied to the signed product.
        shift: u32,
    },
}

impl Instr {
    /// The variables this instruction touches (destination and operands).
    ///
    /// Duplicates are possible (e.g. `acc <- acc + p` yields `acc` twice);
    /// callers treat the result as a small set.
    pub fn touched_vars(&self) -> [Option<VarId>; 3] {
        match *self {
            Instr::Const { dst, .. } => [Some(dst.var), None, None],
            Instr::Copy { dst, src } => [Some(dst.var), Some(src.var), None],
            Instr::Add { dst, a, b } | Instr::Mul { dst, a, b, .. } => {
                [Some(dst.var), Some(a.var), Some(b.var)]
            }
        }
    }

    /// `true` for the arithmetic instructions that cost power/time and can
    /// be approximated (additions and multiplications, per the paper).
    pub fn is_arith(&self) -> bool {
        matches!(self, Instr::Add { .. } | Instr::Mul { .. })
    }
}

/// Aggregate instruction statistics of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Total instructions.
    pub instructions: usize,
    /// Addition count.
    pub adds: usize,
    /// Multiplication count.
    pub muls: usize,
    /// Copy/const (non-arithmetic) count.
    pub moves: usize,
}

/// An immutable, validated kernel program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    name: String,
    add_width: BitWidth,
    mul_width: BitWidth,
    vars: Vec<VarDecl>,
    instrs: Vec<Instr>,
    /// Base offset of each variable in the flattened memory image.
    offsets: Vec<u32>,
    total_cells: u32,
}

impl Program {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operand width used by every `Add`.
    pub fn add_width(&self) -> BitWidth {
        self.add_width
    }

    /// Operand width used by every `Mul`.
    pub fn mul_width(&self) -> BitWidth {
        self.mul_width
    }

    /// The declared variables, in declaration order.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// The declaration of one variable.
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Ids of the variables the DSE may select for approximation, in
    /// declaration order. This is the paper's indexed variable list
    /// `a_0 .. a_{N-1}`.
    pub fn approximable_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.approximable)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Ids of output variables in declaration order.
    pub fn output_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.role == VarRole::Output)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Total `i64` cells in the flattened memory image.
    pub fn total_cells(&self) -> u32 {
        self.total_cells
    }

    /// Flat memory offset of a slot.
    pub(crate) fn offset(&self, slot: Slot) -> usize {
        (self.offsets[slot.var.index()] + slot.idx) as usize
    }

    /// Instruction counts by kind.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats {
            instructions: self.instrs.len(),
            ..Default::default()
        };
        for i in &self.instrs {
            match i {
                Instr::Add { .. } => s.adds += 1,
                Instr::Mul { .. } => s.muls += 1,
                _ => s.moves += 1,
            }
        }
        s
    }

    /// Renders a human-readable listing (one instruction per line) — useful
    /// in tests and docs.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let slot = |s: Slot| format!("{}[{}]", self.vars[s.var.index()].name, s.idx);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program {} (add {}, mul {})",
            self.name, self.add_width, self.mul_width
        );
        for (pc, i) in self.instrs.iter().enumerate() {
            let line = match *i {
                Instr::Const { dst, value } => format!("{} <- {value}", slot(dst)),
                Instr::Copy { dst, src } => format!("{} <- {}", slot(dst), slot(src)),
                Instr::Add { dst, a, b } => {
                    format!("{} <- {} + {}", slot(dst), slot(a), slot(b))
                }
                Instr::Mul {
                    dst,
                    a,
                    b,
                    shift: 0,
                } => {
                    format!("{} <- {} * {}", slot(dst), slot(a), slot(b))
                }
                Instr::Mul { dst, a, b, shift } => {
                    format!("{} <- ({} * {}) >> {shift}", slot(dst), slot(a), slot(b))
                }
            };
            let _ = writeln!(out, "  {pc:>5}: {line}");
        }
        out
    }
}

/// Incrementally constructs a [`Program`].
///
/// Declare variables first, then emit instructions; [`ProgramBuilder::build`]
/// validates slot bounds and interface completeness.
///
/// ```
/// use ax_vm::ir::ProgramBuilder;
/// use ax_operators::BitWidth;
///
/// # fn main() -> Result<(), ax_vm::VmError> {
/// let mut pb = ProgramBuilder::new("dot2", BitWidth::W8, BitWidth::W8);
/// let x = pb.input("x", 2);
/// let y = pb.input("y", 2);
/// let p = pb.temp("p", 1);
/// let acc = pb.output("acc", 1);
/// pb.konst(acc.at(0), 0);
/// for i in 0..2 {
///     pb.mul(p.at(0), x.at(i), y.at(i), 0);
///     pb.add(acc.at(0), acc.at(0), p.at(0));
/// }
/// let prog = pb.build()?;
/// assert_eq!(prog.stats().muls, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    add_width: BitWidth,
    mul_width: BitWidth,
    vars: Vec<VarDecl>,
    names: HashMap<String, VarId>,
    instrs: Vec<Instr>,
    error: Option<VmError>,
}

impl ProgramBuilder {
    /// Starts a program with the given arithmetic widths.
    pub fn new(name: impl Into<String>, add_width: BitWidth, mul_width: BitWidth) -> Self {
        Self {
            name: name.into(),
            add_width,
            mul_width,
            vars: Vec::new(),
            names: HashMap::new(),
            instrs: Vec::new(),
            error: None,
        }
    }

    fn declare(&mut self, name: &str, len: u32, role: VarRole, approximable: bool) -> VarId {
        let id = VarId(self.vars.len() as u32);
        if self.names.contains_key(name) {
            self.fail(VmError::DuplicateVariable {
                name: name.to_owned(),
            });
        }
        if len == 0 {
            self.fail(VmError::EmptyVariable {
                name: name.to_owned(),
            });
        }
        self.names.insert(name.to_owned(), id);
        self.vars.push(VarDecl {
            name: name.to_owned(),
            len,
            role,
            approximable,
        });
        id
    }

    /// Declares an input variable of `len` elements (approximable).
    pub fn input(&mut self, name: &str, len: u32) -> VarId {
        self.declare(name, len, VarRole::Input, true)
    }

    /// Declares an output variable of `len` elements (approximable).
    pub fn output(&mut self, name: &str, len: u32) -> VarId {
        self.declare(name, len, VarRole::Output, true)
    }

    /// Declares a temporary variable of `len` elements (approximable).
    pub fn temp(&mut self, name: &str, len: u32) -> VarId {
        self.declare(name, len, VarRole::Temp, true)
    }

    /// Excludes a variable from the DSE's selectable set (it will always
    /// execute precisely unless another touched variable is selected).
    pub fn not_approximable(&mut self, id: VarId) -> &mut Self {
        self.vars[id.index()].approximable = false;
        self
    }

    /// Emits `dst <- value`.
    pub fn konst(&mut self, dst: Slot, value: i64) -> &mut Self {
        self.push(Instr::Const { dst, value })
    }

    /// Emits `dst <- src`.
    pub fn copy(&mut self, dst: Slot, src: Slot) -> &mut Self {
        self.push(Instr::Copy { dst, src })
    }

    /// Emits `dst <- a + b`.
    pub fn add(&mut self, dst: Slot, a: Slot, b: Slot) -> &mut Self {
        self.push(Instr::Add { dst, a, b })
    }

    /// Emits `dst <- (a * b) >> shift`.
    pub fn mul(&mut self, dst: Slot, a: Slot, b: Slot, shift: u32) -> &mut Self {
        self.push(Instr::Mul { dst, a, b, shift })
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        for slot in self.slots_of(i) {
            if slot.var.index() >= self.vars.len() {
                self.fail(VmError::UnknownVariable {
                    name: format!("{}", slot.var),
                });
                continue;
            }
            let decl = &self.vars[slot.var.index()];
            if slot.idx >= decl.len {
                self.fail(VmError::IndexOutOfBounds {
                    var: decl.name.clone(),
                    index: slot.idx,
                    len: decl.len,
                });
            }
        }
        self.instrs.push(i);
        self
    }

    fn slots_of(&self, i: Instr) -> Vec<Slot> {
        match i {
            Instr::Const { dst, .. } => vec![dst],
            Instr::Copy { dst, src } => vec![dst, src],
            Instr::Add { dst, a, b } | Instr::Mul { dst, a, b, .. } => vec![dst, a, b],
        }
    }

    fn fail(&mut self, e: VmError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Validates and freezes the program.
    ///
    /// # Errors
    ///
    /// Returns the first construction error (duplicate or empty variable,
    /// out-of-bounds slot) or [`VmError::NoOutputs`] if no output variable
    /// was declared.
    pub fn build(self) -> Result<Program, VmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.vars.iter().any(|v| v.role == VarRole::Output) {
            return Err(VmError::NoOutputs);
        }
        let mut offsets = Vec::with_capacity(self.vars.len());
        let mut total = 0u32;
        for v in &self.vars {
            offsets.push(total);
            total += v.len;
        }
        Ok(Program {
            name: self.name,
            add_width: self.add_width,
            mul_width: self.mul_width,
            vars: self.vars,
            instrs: self.instrs,
            offsets,
            total_cells: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut pb = ProgramBuilder::new("tiny", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 2);
        let b = pb.input("b", 2);
        let t = pb.temp("t", 1);
        let y = pb.output("y", 1);
        pb.konst(y.at(0), 0);
        for i in 0..2 {
            pb.mul(t.at(0), a.at(i), b.at(i), 0);
            pb.add(y.at(0), y.at(0), t.at(0));
        }
        pb.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_layout() {
        let p = tiny();
        assert_eq!(p.total_cells(), 6);
        assert_eq!(p.vars().len(), 4);
        assert_eq!(p.var_by_name("t"), Some(VarId(2)));
        assert_eq!(p.var_by_name("missing"), None);
        assert_eq!(p.offset(VarId(1).at(1)), 3);
    }

    #[test]
    fn stats_count_instruction_kinds() {
        let s = tiny().stats();
        assert_eq!(s.instructions, 5);
        assert_eq!(s.adds, 2);
        assert_eq!(s.muls, 2);
        assert_eq!(s.moves, 1);
    }

    #[test]
    fn approximable_and_output_lists() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 1);
        let y = pb.output("y", 1);
        pb.not_approximable(y);
        pb.copy(y.at(0), a.at(0));
        let p = pb.build().unwrap();
        assert_eq!(p.approximable_vars(), vec![a]);
        assert_eq!(p.output_vars(), vec![y]);
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        pb.input("a", 1);
        pb.input("a", 1);
        pb.output("y", 1);
        assert!(matches!(pb.build(), Err(VmError::DuplicateVariable { .. })));
    }

    #[test]
    fn zero_length_variable_rejected() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        pb.input("a", 0);
        pb.output("y", 1);
        assert!(matches!(pb.build(), Err(VmError::EmptyVariable { .. })));
    }

    #[test]
    fn out_of_bounds_slot_rejected() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 2);
        let y = pb.output("y", 1);
        pb.copy(y.at(0), a.at(2));
        assert!(matches!(pb.build(), Err(VmError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn missing_output_rejected() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        pb.input("a", 1);
        assert!(matches!(pb.build(), Err(VmError::NoOutputs)));
    }

    #[test]
    fn first_error_wins() {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 1);
        pb.input("a", 2); // duplicate (first error)
        let y = pb.output("y", 1);
        pb.copy(y.at(0), a.at(5)); // also out of bounds
        assert!(matches!(pb.build(), Err(VmError::DuplicateVariable { .. })));
    }

    #[test]
    fn touched_vars_cover_operands() {
        let p = tiny();
        let mul = p.instrs()[1];
        let touched: Vec<_> = mul.touched_vars().into_iter().flatten().collect();
        assert!(touched.contains(&p.var_by_name("t").unwrap()));
        assert!(touched.contains(&p.var_by_name("a").unwrap()));
        assert!(touched.contains(&p.var_by_name("b").unwrap()));
        assert!(mul.is_arith());
        assert!(!p.instrs()[0].is_arith());
    }

    #[test]
    fn listing_mentions_variables_and_widths() {
        let text = tiny().listing();
        assert!(text.contains("program tiny"));
        assert!(text.contains("8-bit"));
        assert!(text.contains("y[0] <- y[0] + t[0]"));
        assert!(text.contains("t[0] <- a[0] * b[0]"));
    }
}
