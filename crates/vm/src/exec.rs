//! The instrumented interpreter.
//!
//! [`Executor`] runs a [`Program`] under an operator [`Binding`]: every
//! addition or multiplication flagged by the variable selection executes on
//! the binding's approximate models and is charged their power/time; every
//! other arithmetic instruction executes on the width class's precise
//! operator and is charged the precise constants. The paper's Δpower/Δtime
//! then fall out as differences between two [`ExecOutcome`] profiles.

use crate::cost::{ArithProfile, CostMeter, OpCost};
use crate::error::VmError;
use crate::instrument::{instruction_flags_into, VarMask};
use crate::ir::{Instr, Program, VarRole};
use ax_operators::signed::mul_signed;
use ax_operators::{AdderEntry, AdderId, BitWidth, MulEntry, MulId, OperatorLibrary};

/// The operator pair a configuration binds to a program, plus the precise
/// reference operators of the same width classes.
///
/// The per-operation cost constants of all four operators are captured into
/// `[precise, approximate]` pairs at construction, so neither execution
/// engine touches an operator spec on its hot path.
#[derive(Debug, Clone)]
pub struct Binding<'lib> {
    adder: &'lib AdderEntry,
    mul: &'lib MulEntry,
    precise_adder: &'lib AdderEntry,
    precise_mul: &'lib MulEntry,
    add_costs: [OpCost; 2],
    mul_costs: [OpCost; 2],
}

fn cost_of(spec: &ax_operators::OperatorSpec) -> OpCost {
    OpCost {
        power_mw: spec.power_mw(),
        time_ns: spec.time_ns(),
    }
}

impl<'lib> Binding<'lib> {
    /// Binds the `adder`-th adder and `mul`-th multiplier of the library's
    /// width classes matching the program.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnsupportedWidth`] if the library carries no
    /// operators at the program's widths.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range for its (non-empty) width class.
    pub fn new(
        lib: &'lib OperatorLibrary,
        program: &Program,
        adder: AdderId,
        mul: MulId,
    ) -> Result<Self, VmError> {
        Self::for_widths(lib, program.add_width(), program.mul_width(), adder, mul)
    }

    /// Binds by width class directly, without a program in hand — the entry
    /// point batch engines use when only the widths of a compiled skeleton
    /// are known.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnsupportedWidth`] if the library carries no
    /// operators at the given widths.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range for its (non-empty) width class.
    pub fn for_widths(
        lib: &'lib OperatorLibrary,
        add_width: BitWidth,
        mul_width: BitWidth,
        adder: AdderId,
        mul: MulId,
    ) -> Result<Self, VmError> {
        let adders = lib.adders(add_width);
        if adders.is_empty() {
            return Err(VmError::UnsupportedWidth {
                what: "adder",
                width_bits: add_width.bits(),
            });
        }
        let muls = lib.multipliers(mul_width);
        if muls.is_empty() {
            return Err(VmError::UnsupportedWidth {
                what: "multiplier",
                width_bits: mul_width.bits(),
            });
        }
        let (adder, mul) = (&adders[adder.0], &muls[mul.0]);
        let (precise_adder, precise_mul) = (&adders[0], &muls[0]);
        Ok(Self {
            adder,
            mul,
            precise_adder,
            precise_mul,
            add_costs: [cost_of(&precise_adder.spec), cost_of(&adder.spec)],
            mul_costs: [cost_of(&precise_mul.spec), cost_of(&mul.spec)],
        })
    }

    /// Binds the precise operators of both width classes (the reference
    /// execution).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnsupportedWidth`] if the library carries no
    /// operators at the program's widths.
    pub fn precise(lib: &'lib OperatorLibrary, program: &Program) -> Result<Self, VmError> {
        Self::new(lib, program, AdderId(0), MulId(0))
    }

    /// The bound approximate adder entry.
    pub fn adder(&self) -> &'lib AdderEntry {
        self.adder
    }

    /// The bound approximate multiplier entry.
    pub fn mul(&self) -> &'lib MulEntry {
        self.mul
    }

    /// The `[precise, approximate]` per-addition cost pair, captured once
    /// at construction.
    pub fn add_costs(&self) -> &[OpCost; 2] {
        &self.add_costs
    }

    /// The `[precise, approximate]` per-multiplication cost pair, captured
    /// once at construction.
    pub fn mul_costs(&self) -> &[OpCost; 2] {
        &self.mul_costs
    }
}

/// Result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Output variable contents, concatenated in declaration order.
    pub outputs: Vec<i64>,
    /// Arithmetic activity and accumulated power/time.
    pub profile: ArithProfile,
}

/// Reusable execution buffers.
///
/// Evaluating thousands of designs against the same program (a DSE sweep)
/// would pay a memory-image and instruction-flag allocation per design if
/// each run allocated afresh. The batch hot path — [`Executor::initial_memory`]
/// once, then [`run_from_image`] per design — clears and refills one scratch
/// instead, so the buffers are allocated once per thread and amortised
/// across the batch. [`Executor`] owns one internally for the same reason.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    pub(crate) mem: Vec<i64>,
    flags: Vec<bool>,
}

impl ExecScratch {
    /// Empty buffers; they grow to the program's size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the per-instruction approximation flags for `mask` into
    /// this scratch. Callers stepping through designs that share one mask
    /// call this once and then [`run_from_image_prepared`] per design,
    /// skipping the per-design flag recomputation.
    pub fn prepare_flags(&mut self, program: &Program, mask: &VarMask) {
        instruction_flags_into(program, mask, &mut self.flags);
    }
}

/// Prepares inputs for and runs a program.
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    inputs: Vec<Option<Vec<i64>>>,
    /// Reused across [`Executor::run`] calls: repeated runs of one executor
    /// (tests, reference sweeps) pay the buffer allocation once.
    scratch: ExecScratch,
}

impl<'p> Executor<'p> {
    /// An executor with no inputs bound yet.
    pub fn new(program: &'p Program) -> Self {
        Self {
            program,
            inputs: vec![None; program.vars().len()],
            scratch: ExecScratch::new(),
        }
    }

    /// Binds input data to the named input variable.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownVariable`] for an unknown name and
    /// [`VmError::InputLengthMismatch`] if the data length differs from the
    /// declaration.
    pub fn with_input(mut self, name: &str, values: &[i64]) -> Result<Self, VmError> {
        let id = self
            .program
            .var_by_name(name)
            .ok_or_else(|| VmError::UnknownVariable {
                name: name.to_owned(),
            })?;
        let decl = self.program.var(id);
        if decl.len() as usize != values.len() {
            return Err(VmError::InputLengthMismatch {
                name: name.to_owned(),
                expected: decl.len(),
                got: values.len(),
            });
        }
        self.inputs[id.index()] = Some(values.to_vec());
        Ok(self)
    }

    /// Executes the program under `binding` with the variables in `mask`
    /// approximated.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MissingInput`] if an input variable has no data
    /// bound, or [`VmError::OperandOverflow`] if a multiplication operand's
    /// magnitude exceeds the multiplier width.
    pub fn run(&mut self, binding: &Binding<'_>, mask: &VarMask) -> Result<ExecOutcome, VmError> {
        let image = self.initial_memory()?;
        run_from_image(self.program, &image, binding, mask, &mut self.scratch)
    }

    /// Resolves and validates the initial memory image once: inputs bound
    /// at their offsets, everything else zeroed. Evaluation engines compute
    /// this per benchmark and replay it through [`run_from_image`] for each
    /// design, instead of re-binding (and re-cloning) inputs per run.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MissingInput`] if an input variable has no data
    /// bound.
    pub fn initial_memory(&self) -> Result<Vec<i64>, VmError> {
        let program = self.program;
        let mut mem = vec![0i64; program.total_cells() as usize];
        for (idx, decl) in program.vars().iter().enumerate() {
            match (&self.inputs[idx], decl.role()) {
                (Some(values), _) => {
                    let base = program.offset(crate::ir::VarId(idx as u32).at(0));
                    mem[base..base + values.len()].copy_from_slice(values);
                }
                (None, VarRole::Input) => {
                    return Err(VmError::MissingInput {
                        name: decl.name().to_owned(),
                    });
                }
                _ => {}
            }
        }
        Ok(mem)
    }
}

/// Executes `program` from a precomputed initial memory image (see
/// [`Executor::initial_memory`]): one memcpy into the scratch buffers, then
/// the interpreter loop — no input re-binding per design.
///
/// # Errors
///
/// Returns [`VmError::OperandOverflow`] if a multiplication operand's
/// magnitude exceeds the multiplier width.
///
/// # Panics
///
/// Panics if `image` does not match the program's cell count.
pub fn run_from_image(
    program: &Program,
    image: &[i64],
    binding: &Binding<'_>,
    mask: &VarMask,
    scratch: &mut ExecScratch,
) -> Result<ExecOutcome, VmError> {
    scratch.prepare_flags(program, mask);
    run_from_image_prepared(program, image, binding, scratch)
}

/// Like [`run_from_image`], but reuses the instruction flags already in
/// `scratch` (from a previous [`ExecScratch::prepare_flags`] over the same
/// program) instead of recomputing them — the batch path for consecutive
/// designs that share one variable selection.
///
/// # Errors
///
/// Returns [`VmError::OperandOverflow`] if a multiplication operand's
/// magnitude exceeds the multiplier width.
///
/// # Panics
///
/// Panics if `image` does not match the program's cell count or the scratch
/// flags were prepared for a different program.
pub fn run_from_image_prepared(
    program: &Program,
    image: &[i64],
    binding: &Binding<'_>,
    scratch: &mut ExecScratch,
) -> Result<ExecOutcome, VmError> {
    assert_eq!(
        image.len(),
        program.total_cells() as usize,
        "memory image size does not match the program"
    );
    assert_eq!(
        scratch.flags.len(),
        program.instrs().len(),
        "instruction flags not prepared for this program"
    );
    {
        let mem = &mut scratch.mem;
        mem.clear();
        mem.extend_from_slice(image);

        let flags = &scratch.flags;
        let mut meter = CostMeter::new();
        let add_width = program.add_width();
        let mul_width = program.mul_width();

        for (pc, instr) in program.instrs().iter().enumerate() {
            match *instr {
                Instr::Const { dst, value } => {
                    mem[program.offset(dst)] = value;
                }
                Instr::Copy { dst, src } => {
                    mem[program.offset(dst)] = mem[program.offset(src)];
                }
                Instr::Add { dst, a, b } => {
                    let approx = flags[pc];
                    let model = if approx {
                        &binding.adder.model
                    } else {
                        &binding.precise_adder.model
                    };
                    let x = mem[program.offset(a)];
                    let y = mem[program.offset(b)];
                    mem[program.offset(dst)] = sliced_add(model, x, y, add_width);
                    meter.record_add(approx);
                }
                Instr::Mul { dst, a, b, shift } => {
                    let approx = flags[pc];
                    let model = if approx {
                        &binding.mul.model
                    } else {
                        &binding.precise_mul.model
                    };
                    let x = mem[program.offset(a)];
                    let y = mem[program.offset(b)];
                    for v in [x, y] {
                        if v.unsigned_abs() > mul_width.mask() {
                            return Err(VmError::OperandOverflow {
                                pc,
                                value: v,
                                width_bits: mul_width.bits(),
                            });
                        }
                    }
                    let p = mul_signed(model, x, y);
                    mem[program.offset(dst)] = p >> shift;
                    meter.record_mul(approx);
                }
            }
        }

        let mut outputs = Vec::new();
        for id in program.output_vars() {
            let base = program.offset(id.at(0));
            let len = program.var(id).len() as usize;
            outputs.extend_from_slice(&mem[base..base + len]);
        }
        Ok(ExecOutcome {
            outputs,
            profile: meter.finish(binding.add_costs(), binding.mul_costs()),
        })
    }
}

/// Adds two `i64` registers with the low `width` bits computed by the adder
/// slice and the upper bits added exactly with the slice's carry-out — the
/// "approximate low-part ALU" embedding (see the crate docs).
pub(crate) fn sliced_add(model: &ax_operators::AdderModel, a: i64, b: i64, width: BitWidth) -> i64 {
    let bits = width.bits();
    let mask = width.mask();
    let low = model.add((a as u64) & mask, (b as u64) & mask);
    let carry = (low >> bits) as i64;
    let high = (a >> bits).wrapping_add(b >> bits).wrapping_add(carry);
    (high << bits) | (low & mask) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use ax_operators::{AdderKind, AdderModel};

    fn lib() -> OperatorLibrary {
        OperatorLibrary::evoapprox()
    }

    /// dot product of two length-3 vectors on 8-bit operators.
    fn dot3() -> Program {
        let mut pb = ProgramBuilder::new("dot3", BitWidth::W8, BitWidth::W8);
        let x = pb.input("x", 3);
        let y = pb.input("y", 3);
        let p = pb.temp("p", 1);
        let acc = pb.output("acc", 1);
        pb.konst(acc.at(0), 0);
        for i in 0..3 {
            pb.mul(p.at(0), x.at(i), y.at(i), 0);
            pb.add(acc.at(0), acc.at(0), p.at(0));
        }
        pb.build().unwrap()
    }

    #[test]
    fn precise_run_matches_native_dot_product() {
        let prog = dot3();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let out = Executor::new(&prog)
            .with_input("x", &[3, 5, 7])
            .unwrap()
            .with_input("y", &[11, 13, 2])
            .unwrap()
            .run(&binding, &VarMask::none(&prog))
            .unwrap();
        assert_eq!(out.outputs, vec![3 * 11 + 5 * 13 + 7 * 2]);
        assert_eq!(out.profile.adds_total, 3);
        assert_eq!(out.profile.muls_total, 3);
        assert_eq!(out.profile.adds_approx, 0);
        assert_eq!(out.profile.muls_approx, 0);
    }

    #[test]
    fn precise_costs_match_spec_sums() {
        let prog = dot3();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let out = Executor::new(&prog)
            .with_input("x", &[1, 1, 1])
            .unwrap()
            .with_input("y", &[1, 1, 1])
            .unwrap()
            .run(&binding, &VarMask::none(&prog))
            .unwrap();
        let a = &lib.adders(BitWidth::W8)[0].spec;
        let m = &lib.multipliers(BitWidth::W8)[0].spec;
        let expect_power = 3.0 * a.power_mw() + 3.0 * m.power_mw();
        let expect_time = 3.0 * a.time_ns() + 3.0 * m.time_ns();
        assert!((out.profile.power_mw - expect_power).abs() < 1e-12);
        assert!((out.profile.time_ns - expect_time).abs() < 1e-12);
    }

    #[test]
    fn approximating_all_variables_changes_cost_not_counts() {
        let prog = dot3();
        let lib = lib();
        // Most aggressive operators: adder 02Y (idx 5), multiplier 17MJ (idx 5).
        let binding = Binding::new(&lib, &prog, AdderId(5), MulId(5)).unwrap();
        let out = Executor::new(&prog)
            .with_input("x", &[100, 101, 102])
            .unwrap()
            .with_input("y", &[55, 66, 77])
            .unwrap()
            .run(&binding, &VarMask::all(&prog))
            .unwrap();
        assert_eq!(out.profile.adds_total, 3);
        assert_eq!(out.profile.adds_approx, 3);
        assert_eq!(out.profile.muls_approx, 3);
        let a = &lib.adders(BitWidth::W8)[5].spec;
        let m = &lib.multipliers(BitWidth::W8)[5].spec;
        assert!((out.profile.power_mw - 3.0 * (a.power_mw() + m.power_mw())).abs() < 1e-12);
        // The cheap operators degrade accuracy: the dot product of values
        // around 100·60 cannot survive a po2-floor multiplier unchanged.
        assert_ne!(out.outputs, vec![100 * 55 + 101 * 66 + 102 * 77]);
    }

    #[test]
    fn partial_selection_splits_costs() {
        let prog = dot3();
        let lib = lib();
        let binding = Binding::new(&lib, &prog, AdderId(4), MulId(4)).unwrap();
        // Select only the accumulator: adds touch it, muls do not.
        let acc_pos = {
            let vars = prog.approximable_vars();
            vars.iter()
                .position(|&v| prog.var(v).name() == "acc")
                .unwrap() as u32
        };
        let mut mask = VarMask::none(&prog);
        mask.set(acc_pos, true);
        let out = Executor::new(&prog)
            .with_input("x", &[1, 2, 3])
            .unwrap()
            .with_input("y", &[4, 5, 6])
            .unwrap()
            .run(&binding, &mask)
            .unwrap();
        assert_eq!(out.profile.adds_approx, 3);
        assert_eq!(out.profile.muls_approx, 0);
    }

    #[test]
    fn missing_input_is_reported() {
        let prog = dot3();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let err = Executor::new(&prog)
            .with_input("x", &[1, 2, 3])
            .unwrap()
            .run(&binding, &VarMask::none(&prog))
            .unwrap_err();
        assert_eq!(err, VmError::MissingInput { name: "y".into() });
    }

    #[test]
    fn input_length_mismatch_is_reported() {
        let prog = dot3();
        let err = Executor::new(&prog).with_input("x", &[1, 2]).unwrap_err();
        assert!(matches!(
            err,
            VmError::InputLengthMismatch {
                expected: 3,
                got: 2,
                ..
            }
        ));
    }

    #[test]
    fn unknown_input_is_reported() {
        let prog = dot3();
        let err = Executor::new(&prog).with_input("zz", &[1]).unwrap_err();
        assert!(matches!(err, VmError::UnknownVariable { .. }));
    }

    #[test]
    fn mul_operand_overflow_is_reported() {
        let prog = dot3();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let err = Executor::new(&prog)
            .with_input("x", &[300, 0, 0]) // exceeds 8-bit magnitude
            .unwrap()
            .with_input("y", &[1, 0, 0])
            .unwrap()
            .run(&binding, &VarMask::none(&prog))
            .unwrap_err();
        assert!(matches!(
            err,
            VmError::OperandOverflow { width_bits: 8, .. }
        ));
    }

    #[test]
    fn sliced_add_is_exact_with_precise_slice() {
        let m = AdderModel::precise(BitWidth::W8);
        for (a, b) in [
            (0i64, 0i64),
            (255, 1),
            (1000, 2000),
            (-1, 1),
            (-1000, 999),
            (-128, -128),
            (i32::MAX as i64, 1),
            (i32::MIN as i64, -1),
        ] {
            assert_eq!(sliced_add(&m, a, b, BitWidth::W8), a + b, "({a},{b})");
        }
    }

    #[test]
    fn sliced_add_error_confined_to_low_bits() {
        let approx = AdderModel::new(AdderKind::Trunc { cut_bits: 4 }, BitWidth::W8);
        for (a, b) in [(1000i64, 2000i64), (-500, 1234), (7, 9), (-8, -9)] {
            let got = sliced_add(&approx, a, b, BitWidth::W8);
            // Error bound: dropped low sum plus one carry = < 2^(4+1) + 2^8.
            assert!((got - (a + b)).abs() < 512, "({a},{b}) -> {got}");
        }
    }

    #[test]
    fn unsupported_width_is_reported() {
        // A program adding at 32 bits: the library has no 32-bit adders.
        let mut pb = ProgramBuilder::new("w32add", BitWidth::W32, BitWidth::W32);
        let a = pb.input("a", 1);
        let y = pb.output("y", 1);
        pb.add(y.at(0), a.at(0), a.at(0));
        let prog = pb.build().unwrap();
        let lib = lib();
        let err = Binding::precise(&lib, &prog).unwrap_err();
        assert_eq!(
            err,
            VmError::UnsupportedWidth {
                what: "adder",
                width_bits: 32
            }
        );
    }

    #[test]
    fn fixed_point_shift_rescales_product() {
        let mut pb = ProgramBuilder::new("q4", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 1);
        let b = pb.input("b", 1);
        let y = pb.output("y", 1);
        pb.mul(y.at(0), a.at(0), b.at(0), 4); // Q4 fixed point
        let prog = pb.build().unwrap();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let out = Executor::new(&prog)
            .with_input("a", &[32]) // 2.0 in Q4
            .unwrap()
            .with_input("b", &[24]) // 1.5 in Q4
            .unwrap()
            .run(&binding, &VarMask::none(&prog))
            .unwrap();
        assert_eq!(out.outputs, vec![48]); // 3.0 in Q4
    }

    #[test]
    fn temps_are_zero_initialised_between_runs() {
        let mut pb = ProgramBuilder::new("t0", BitWidth::W8, BitWidth::W8);
        let t = pb.temp("t", 1);
        let y = pb.output("y", 1);
        pb.copy(y.at(0), t.at(0));
        let prog = pb.build().unwrap();
        let lib = lib();
        let binding = Binding::precise(&lib, &prog).unwrap();
        let mut ex = Executor::new(&prog);
        for _ in 0..2 {
            let out = ex.run(&binding, &VarMask::none(&prog)).unwrap();
            assert_eq!(out.outputs, vec![0]);
        }
    }
}
