//! Error type for program construction and execution.

use std::error::Error;
use std::fmt;

/// Errors raised while building or executing a kernel program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A variable name was declared twice in one program.
    DuplicateVariable {
        /// The clashing name.
        name: String,
    },
    /// A slot refers past the end of its variable.
    IndexOutOfBounds {
        /// The variable's name.
        var: String,
        /// The offending element index.
        index: u32,
        /// The variable's declared length.
        len: u32,
    },
    /// A referenced variable name does not exist in the program.
    UnknownVariable {
        /// The unresolved name.
        name: String,
    },
    /// An input variable was not provided before running.
    MissingInput {
        /// The input variable's name.
        name: String,
    },
    /// Provided input data does not match the variable's length.
    InputLengthMismatch {
        /// The input variable's name.
        name: String,
        /// Declared length.
        expected: u32,
        /// Provided length.
        got: usize,
    },
    /// A multiplication operand's magnitude exceeds the multiplier width.
    OperandOverflow {
        /// Instruction index within the program.
        pc: usize,
        /// The offending operand value.
        value: i64,
        /// The multiplier operand width in bits.
        width_bits: u32,
    },
    /// The operator library has no operators for a requested width.
    UnsupportedWidth {
        /// What was requested ("adder" or "multiplier").
        what: &'static str,
        /// The requested width in bits.
        width_bits: u32,
    },
    /// A program must declare at least one output element.
    NoOutputs,
    /// A program declared a zero-length variable.
    EmptyVariable {
        /// The variable's name.
        name: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DuplicateVariable { name } => {
                write!(f, "variable `{name}` declared more than once")
            }
            VmError::IndexOutOfBounds { var, index, len } => {
                write!(f, "index {index} out of bounds for variable `{var}` of length {len}")
            }
            VmError::UnknownVariable { name } => write!(f, "unknown variable `{name}`"),
            VmError::MissingInput { name } => write!(f, "input `{name}` was not provided"),
            VmError::InputLengthMismatch { name, expected, got } => write!(
                f,
                "input `{name}` expects {expected} elements but {got} were provided"
            ),
            VmError::OperandOverflow { pc, value, width_bits } => write!(
                f,
                "multiplication operand {value} at instruction {pc} exceeds {width_bits}-bit magnitude"
            ),
            VmError::UnsupportedWidth { what, width_bits } => {
                write!(f, "operator library provides no {width_bits}-bit {what}")
            }
            VmError::NoOutputs => write!(f, "program declares no output elements"),
            VmError::EmptyVariable { name } => {
                write!(f, "variable `{name}` has zero length")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let cases: Vec<VmError> = vec![
            VmError::DuplicateVariable { name: "x".into() },
            VmError::IndexOutOfBounds {
                var: "a".into(),
                index: 9,
                len: 4,
            },
            VmError::UnknownVariable {
                name: "ghost".into(),
            },
            VmError::MissingInput { name: "in".into() },
            VmError::InputLengthMismatch {
                name: "in".into(),
                expected: 4,
                got: 2,
            },
            VmError::OperandOverflow {
                pc: 3,
                value: 300,
                width_bits: 8,
            },
            VmError::UnsupportedWidth {
                what: "adder",
                width_bits: 32,
            },
            VmError::NoOutputs,
            VmError::EmptyVariable { name: "z".into() },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<VmError>();
    }
}
