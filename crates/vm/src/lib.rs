//! Instrumented-execution substrate: kernel IR, interpreter, instrumentation
//! and per-operation cost accounting.
//!
//! The reproduced paper "considers a CPU running software with dedicated
//! instructions to trigger different approximate adders and multipliers" and
//! generates approximate application versions "through automatic code
//! instrumentation" that approximates *all sums or multiplications on selected
//! variables*. This crate is that substrate:
//!
//! * [`ir`] — a small straight-line kernel IR whose arithmetic instructions
//!   are tagged with the **named variables** they read and write, built
//!   through [`ir::ProgramBuilder`];
//! * [`instrument`] — variable-selection masks ([`instrument::VarMask`]) and
//!   the rule deciding which instructions execute approximately (an
//!   instruction is approximate iff it touches a selected variable);
//! * [`exec`] — the interpreter: executes a program under an operator
//!   [`exec::Binding`], routing flagged additions and multiplications
//!   through the bound approximate models while accumulating power and time
//!   ([`cost::ArithProfile`]);
//! * [`cost`] — per-run cost accounting, with power/time computed from the
//!   pre-characterised per-operation constants exactly as in the paper;
//! * [`compile`] — the threaded-code compiler: specialises a
//!   `(Program, Binding, VarMask)` triple into a pre-resolved
//!   [`compile::CompiledProgram`] (offsets resolved, approximate/precise
//!   choice baked per instruction, profile computed analytically at compile
//!   time) — bit-identical to the interpreter, several times faster on DSE
//!   sweeps, with a batch API over shared skeletons.
//!
//! # Arithmetic semantics
//!
//! Registers are `i64`. An `Add` at width `W` feeds the low `W` bits of both
//! operands through the (possibly approximate) adder slice and adds the upper
//! bits exactly, propagating the slice's carry — the standard "approximate
//! low-part ALU" construction, which handles two's-complement signs
//! transparently. A `Mul` at width `W` requires operand magnitudes to fit
//! `W` bits and uses the sign-magnitude embedding.
//!
//! ```
//! use ax_vm::ir::ProgramBuilder;
//! use ax_vm::exec::{Binding, Executor};
//! use ax_vm::instrument::VarMask;
//! use ax_operators::{BitWidth, OperatorLibrary};
//!
//! # fn main() -> Result<(), ax_vm::VmError> {
//! // y = a*b + c, all on 8-bit data.
//! let mut pb = ProgramBuilder::new("axpy", BitWidth::W8, BitWidth::W8);
//! let a = pb.input("a", 1);
//! let b = pb.input("b", 1);
//! let c = pb.input("c", 1);
//! let p = pb.temp("p", 1);
//! let y = pb.output("y", 1);
//! pb.mul(p.at(0), a.at(0), b.at(0), 0);
//! pb.add(y.at(0), p.at(0), c.at(0));
//! let prog = pb.build()?;
//!
//! let lib = OperatorLibrary::evoapprox();
//! let binding = Binding::precise(&lib, &prog)?;
//! let out = Executor::new(&prog)
//!     .with_input("a", &[7])?
//!     .with_input("b", &[6])?
//!     .with_input("c", &[10])?
//!     .run(&binding, &VarMask::none(&prog))?;
//! assert_eq!(out.outputs, vec![52]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod cost;
pub mod error;
pub mod exec;
pub mod instrument;
pub mod ir;

pub use compile::{BatchStats, CompiledProgram, CompiledSkeleton};
pub use cost::ArithProfile;
pub use error::VmError;
pub use exec::{Binding, ExecOutcome, Executor};
pub use instrument::VarMask;
pub use ir::{Program, ProgramBuilder, Slot, VarId};
