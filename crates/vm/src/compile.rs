//! Threaded-code design specialisation: compile the interpreter away.
//!
//! [`crate::exec::run_from_image`] pays, per instruction and per design:
//! a `flags[pc]` lookup and branch, an operator-model `match`, up to three
//! `Program::offset` double indirections, and two cost-meter updates — plus
//! a full per-design instruction-flag recomputation. A DSE sweep executes
//! the *same program* thousands of times, so all of that is loop-invariant
//! with respect to the design and can be resolved once.
//!
//! The compilation pass works in two stages:
//!
//! 1. [`CompiledSkeleton`] — built **once per program**: every operand slot
//!    is resolved to its flat `usize` memory offset, every arithmetic
//!    instruction carries the bitmask of approximable variables it touches
//!    (so the per-design approximate/precise decision is a single `AND`),
//!    and output ranges are precomputed.
//! 2. [`CompiledProgram`] — the skeleton **specialised to one
//!    `(Binding, VarMask)` design**: each instruction is rewritten into an
//!    exact or approximate opcode (no `flags[pc]` branch at run time;
//!    precise additions and multiplications compile to raw two's-complement
//!    arithmetic, bypassing the operator-model `match` entirely), and the
//!    run's [`ArithProfile`] is computed **analytically at compile time**
//!    from the static approximate/precise operation counts and the
//!    binding's precomputed [`OpCost`] pairs — the run loop is just loads,
//!    operator-model calls, and stores.
//!
//! Re-specialising is asymmetric by design: changing the variable selection
//! rewrites the opcode vector in place (one linear pass, no allocation),
//! while changing only the operator binding is O(1) — the approximate
//! models live in the [`CompiledProgram`] header, not in each opcode, so a
//! sweep iterating operators in the inner loop pays nothing per design
//! beyond the profile refresh.
//!
//! Equivalence with the interpreter is bit-exact, for outputs *and*
//! profiles: the precise opcodes are algebraically identical to the
//! interpreter's precise model path (see `exact_add`/`exact_mul` notes),
//! and both engines derive power/time through the single
//! [`ArithProfile::from_counts`] formula.

use crate::cost::{ArithCounts, ArithProfile, OpCost};
use crate::error::VmError;
#[allow(unused_imports)] // doc links
use crate::exec::sliced_add;
use crate::exec::{Binding, ExecOutcome, ExecScratch};
use crate::ir::{Instr, Program};
use ax_operators::signed::mul_signed;
use ax_operators::{AdderId, AdderModel, BitWidth, MulId, MulModel, OperatorLibrary};
use std::sync::Arc;

/// One instruction with operand offsets resolved and its touched-variable
/// bitmask attached — everything about the instruction that does not depend
/// on the design.
#[derive(Debug, Clone, Copy)]
enum SkelOp {
    Const {
        dst: usize,
        value: i64,
    },
    Copy {
        dst: usize,
        src: usize,
    },
    Add {
        dst: usize,
        a: usize,
        b: usize,
        /// Bit `i` set iff the instruction touches approximable variable
        /// `i` (mask-bit order): the design's flag is `touched & bits != 0`.
        touched: u64,
    },
    Mul {
        dst: usize,
        a: usize,
        b: usize,
        shift: u32,
        /// Original instruction index, kept for overflow-error parity with
        /// the interpreter.
        pc: u32,
        touched: u64,
    },
}

/// The design-independent compiled form of one [`Program`]: offsets
/// resolved, touched-variable masks attached, output ranges precomputed.
/// Built once per program and shared (via `Arc`) by every
/// [`CompiledProgram`] specialised from it.
#[derive(Debug, Clone)]
pub struct CompiledSkeleton {
    ops: Vec<SkelOp>,
    /// `(base, len)` of each output variable, in declaration order.
    outputs: Vec<(usize, usize)>,
    total_cells: usize,
    output_cells: usize,
    add_width: BitWidth,
    mul_width: BitWidth,
    adds_total: u64,
    muls_total: u64,
    /// The distinct non-zero `touched` masks across all instructions — the
    /// program's *flag classes*. Two variable selections that intersect
    /// every class identically flag every instruction identically, which
    /// [`CompiledSkeleton::flag_signature`] exploits.
    flag_classes: Vec<u64>,
}

impl CompiledSkeleton {
    /// Resolves `program` into its offset-resolved skeleton.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than 64 approximable variables (the
    /// same bound [`crate::instrument::VarMask`] enforces).
    pub fn new(program: &Program) -> Self {
        // Bit position of each variable in the approximable list; u64::MAX
        // shifts below never match (var not selectable -> touched bit 0).
        let approximable = program.approximable_vars();
        assert!(
            approximable.len() <= 64,
            "at most 64 approximable variables supported"
        );
        let mut var_bit = vec![0u64; program.vars().len()];
        for (i, v) in approximable.iter().enumerate() {
            var_bit[v.index()] = 1u64 << i;
        }

        let (mut adds_total, mut muls_total) = (0u64, 0u64);
        let ops: Vec<SkelOp> = program
            .instrs()
            .iter()
            .enumerate()
            .map(|(pc, instr)| match *instr {
                Instr::Const { dst, value } => SkelOp::Const {
                    dst: program.offset(dst),
                    value,
                },
                Instr::Copy { dst, src } => SkelOp::Copy {
                    dst: program.offset(dst),
                    src: program.offset(src),
                },
                Instr::Add { dst, a, b } => {
                    adds_total += 1;
                    SkelOp::Add {
                        dst: program.offset(dst),
                        a: program.offset(a),
                        b: program.offset(b),
                        touched: var_bit[dst.var.index()]
                            | var_bit[a.var.index()]
                            | var_bit[b.var.index()],
                    }
                }
                Instr::Mul { dst, a, b, shift } => {
                    muls_total += 1;
                    SkelOp::Mul {
                        dst: program.offset(dst),
                        a: program.offset(a),
                        b: program.offset(b),
                        shift,
                        pc: pc as u32,
                        touched: var_bit[dst.var.index()]
                            | var_bit[a.var.index()]
                            | var_bit[b.var.index()],
                    }
                }
            })
            .collect();

        let outputs: Vec<(usize, usize)> = program
            .output_vars()
            .into_iter()
            .map(|id| (program.offset(id.at(0)), program.var(id).len() as usize))
            .collect();
        let output_cells = outputs.iter().map(|&(_, len)| len).sum();

        let mut flag_classes: Vec<u64> = Vec::new();
        for op in &ops {
            let touched = match *op {
                SkelOp::Add { touched, .. } | SkelOp::Mul { touched, .. } => touched,
                _ => 0,
            };
            if touched != 0 && !flag_classes.contains(&touched) {
                flag_classes.push(touched);
            }
        }

        Self {
            ops,
            outputs,
            total_cells: program.total_cells() as usize,
            output_cells,
            add_width: program.add_width(),
            mul_width: program.mul_width(),
            adds_total,
            muls_total,
            flag_classes,
        }
    }

    /// Width class of the program's additions.
    pub fn add_width(&self) -> BitWidth {
        self.add_width
    }

    /// Width class of the program's multiplications.
    pub fn mul_width(&self) -> BitWidth {
        self.mul_width
    }

    /// A value characterising exactly which instructions run approximate
    /// under the raw variable selection `bits`: selections with equal
    /// signatures flag every instruction identically, so they compile to
    /// identical opcode vectors and identical operation counts — for any
    /// fixed operator pair, bit-identical outcomes. Bit `i` of the
    /// signature is the non-empty intersection of `bits` with the `i`-th
    /// flag class. Programs with more than 64 flag classes (none in
    /// practice — classes are bounded by distinct instruction shapes) fall
    /// back to the selection itself, which is trivially sound.
    pub fn flag_signature(&self, bits: u64) -> u64 {
        if self.flag_classes.len() > 64 {
            return bits;
        }
        self.flag_classes
            .iter()
            .enumerate()
            .fold(0, |sig, (i, &touched)| {
                sig | (u64::from(touched & bits != 0) << i)
            })
    }

    /// Specialises this skeleton to one design. See
    /// [`CompiledProgram::compile`].
    pub fn compile(self: &Arc<Self>, binding: &Binding<'_>, mask_bits: u64) -> CompiledProgram {
        CompiledProgram::compile(self, binding, mask_bits)
    }
}

/// One opcode of a specialised program: the approximate/precise choice is
/// baked into the variant, so the run loop has no flag lookup and no cost
/// accounting. Operand offsets are `u32` deliberately — a sweep streams the
/// opcode vector thousands of times, and the narrow encoding keeps whole
/// programs resident in L1 (cell counts are bounded by the program IR's
/// `u32` cell space, so the narrowing is lossless).
#[derive(Debug, Clone, Copy)]
enum CompiledOp {
    Const {
        dst: u32,
        value: i64,
    },
    Copy {
        dst: u32,
        src: u32,
    },
    /// Precise addition: raw two's-complement `wrapping_add` (bit-identical
    /// to the precise adder slice, see `exact_add`).
    AddExact {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Approximate addition through the design's adder model.
    AddApprox {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Precise multiplication: operand check + raw `wrapping_mul`
    /// (bit-identical to the sign-magnitude precise model, see `exact_mul`).
    MulExact {
        dst: u32,
        a: u32,
        b: u32,
        shift: u32,
        pc: u32,
    },
    /// Approximate multiplication through the design's multiplier model.
    MulApprox {
        dst: u32,
        a: u32,
        b: u32,
        shift: u32,
        pc: u32,
    },
}

/// Resolves an [`AdderModel`] to a fully inlined approximate-add closure
/// and runs `$body` with it bound to `$add` — the adder-kind `match` is
/// hoisted out of the execution loops, so each kind monomorphises its loop
/// with the kernel inlined (no per-instruction operator dispatch survives
/// to run time). The embedding is bit-identical to the interpreter's
/// [`sliced_add`]; `AdderKind::Precise` shortcuts to `wrapping_add`, which
/// the exactness notes prove equal to the precise sliced path.
macro_rules! with_add_kernel {
    ($model:expr, $w:expr, |$add:ident| $body:expr) => {{
        use ax_operators::adders as kernel;
        use ax_operators::AdderKind as K;
        let w = $w;
        match $model.kind() {
            K::Precise => {
                let $add = |x: i64, y: i64| x.wrapping_add(y);
                $body
            }
            K::Loa { approx_bits } => {
                let $add =
                    move |x: i64, y: i64| sliced(x, y, w, |a, b| kernel::loa(a, b, w, approx_bits));
                $body
            }
            K::Trunc { cut_bits } => {
                let $add =
                    move |x: i64, y: i64| sliced(x, y, w, |a, b| kernel::trunc(a, b, w, cut_bits));
                $body
            }
            K::SetOne { cut_bits } => {
                let $add = move |x: i64, y: i64| {
                    sliced(x, y, w, |a, b| kernel::set_one(a, b, w, cut_bits))
                };
                $body
            }
            K::SetMid { cut_bits } => {
                let $add = move |x: i64, y: i64| {
                    sliced(x, y, w, |a, b| kernel::set_mid(a, b, w, cut_bits))
                };
                $body
            }
            K::CarryCut { cut, window } => {
                let $add = move |x: i64, y: i64| {
                    sliced(x, y, w, |a, b| kernel::carry_cut(a, b, w, cut, window))
                };
                $body
            }
            K::PassB { approx_bits } => {
                let $add = move |x: i64, y: i64| {
                    sliced(x, y, w, |a, b| kernel::pass_b(a, b, w, approx_bits))
                };
                $body
            }
        }
    }};
}

/// Counters describing what the batch kernel did across
/// [`CompiledProgram::run_batch`] calls: how many designs were answered by
/// the cross-group signature cache, collapsed by model-equivalence dedup,
/// executed through the factored kernel vs the sequential fallback, and
/// how long the two kernel stages ran.
///
/// The count fields are schedule-deterministic (they depend only on the
/// batch contents); the `*_ns` timing fields are wall-clock and must be
/// excluded from determinism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Designs submitted across all batches.
    pub designs: u64,
    /// Mask-sharing groups the batches split into.
    pub groups: u64,
    /// Designs answered by the cross-group `(signature, adder, mul)` cache
    /// (including within-group duplicates).
    pub signature_hits: u64,
    /// Designs collapsed onto a model-equivalent representative inside the
    /// factored kernel.
    pub dedup_hits: u64,
    /// Distinct designs actually executed by the factored kernel.
    pub kernel_designs: u64,
    /// Designs executed through the sequential (rebind + run) fallback.
    pub sequential_designs: u64,
    /// Stage-2 kernel invocations (one per adder-homogeneous lane batch).
    pub kernel_invocations: u64,
    /// Wall-clock nanoseconds spent in stage 1 (adder-independent work).
    pub stage1_ns: u64,
    /// Wall-clock nanoseconds spent in stage 2 (per-design lanes).
    pub stage2_ns: u64,
}

impl BatchStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &BatchStats) {
        self.designs += other.designs;
        self.groups += other.groups;
        self.signature_hits += other.signature_hits;
        self.dedup_hits += other.dedup_hits;
        self.kernel_designs += other.kernel_designs;
        self.sequential_designs += other.sequential_designs;
        self.kernel_invocations += other.kernel_invocations;
        self.stage1_ns += other.stage1_ns;
        self.stage2_ns += other.stage2_ns;
    }

    /// How many submitted designs each *executed* design answered for:
    /// `designs / (kernel_designs + sequential_designs)`. 1.0 means no
    /// collapse; `None` before any design executed.
    pub fn collapse_factor(&self) -> Option<f64> {
        let executed = self.kernel_designs + self.sequential_designs;
        (executed > 0).then(|| self.designs as f64 / executed as f64)
    }
}

/// A `(Program, Binding, VarMask)` triple compiled to threaded code, ready
/// to run against any input image of the program.
///
/// The approximate models and the multiplier's overflow bound live in this
/// header (one `Copy` each — operator models are plain value types), the
/// per-instruction choice lives in the opcode variants, and the whole run's
/// cost profile is a precomputed constant.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    skeleton: Arc<CompiledSkeleton>,
    ops: Vec<CompiledOp>,
    mask_bits: u64,
    add_model: AdderModel,
    mul_model: MulModel,
    add_costs: [OpCost; 2],
    mul_costs: [OpCost; 2],
    /// Operand-magnitude bound of the multiplier width (overflow mask).
    mul_mask: u64,
    mul_width_bits: u32,
    counts: ArithCounts,
    profile: ArithProfile,
    batch: BatchStats,
}

impl CompiledProgram {
    /// Specialises `skeleton` to the design `(binding, mask_bits)`.
    ///
    /// `mask_bits` is the raw variable selection
    /// ([`crate::instrument::VarMask::raw_bits`]) over the program's
    /// approximable variables.
    pub fn compile(
        skeleton: &Arc<CompiledSkeleton>,
        binding: &Binding<'_>,
        mask_bits: u64,
    ) -> Self {
        let mut compiled = Self {
            skeleton: Arc::clone(skeleton),
            ops: Vec::with_capacity(skeleton.ops.len()),
            mask_bits: 0,
            add_model: binding.adder().model,
            mul_model: binding.mul().model,
            add_costs: *binding.add_costs(),
            mul_costs: *binding.mul_costs(),
            mul_mask: skeleton.mul_width.mask(),
            mul_width_bits: skeleton.mul_width.bits(),
            counts: ArithCounts::default(),
            profile: ArithProfile::default(),
            batch: BatchStats::default(),
        };
        compiled.select_impl(mask_bits, true);
        compiled
    }

    /// Re-specialises to a new operator binding, keeping the variable
    /// selection: O(1) — swaps the models and refreshes the analytic
    /// profile, without touching the opcode vector.
    pub fn rebind(&mut self, binding: &Binding<'_>) {
        self.add_model = binding.adder().model;
        self.mul_model = binding.mul().model;
        self.add_costs = *binding.add_costs();
        self.mul_costs = *binding.mul_costs();
        self.profile = ArithProfile::from_counts(self.counts, &self.add_costs, &self.mul_costs);
    }

    /// Re-specialises to a new variable selection, keeping the binding:
    /// rewrites the opcode vector in place (one pass, allocation-free). A
    /// no-op when `mask_bits` is unchanged.
    pub fn select(&mut self, mask_bits: u64) {
        if mask_bits != self.mask_bits {
            self.select_impl(mask_bits, false);
        }
    }

    /// Re-specialises to a whole new design: [`CompiledProgram::rebind`] +
    /// [`CompiledProgram::select`].
    pub fn specialize(&mut self, binding: &Binding<'_>, mask_bits: u64) {
        self.rebind(binding);
        self.select(mask_bits);
    }

    fn select_impl(&mut self, mask_bits: u64, force: bool) {
        debug_assert!(force || mask_bits != self.mask_bits);
        let skeleton = &self.skeleton;
        let (mut adds_approx, mut muls_approx) = (0u64, 0u64);
        self.ops.clear();
        self.ops.extend(skeleton.ops.iter().map(|op| match *op {
            SkelOp::Const { dst, value } => CompiledOp::Const {
                dst: dst as u32,
                value,
            },
            SkelOp::Copy { dst, src } => CompiledOp::Copy {
                dst: dst as u32,
                src: src as u32,
            },
            SkelOp::Add { dst, a, b, touched } => {
                let (dst, a, b) = (dst as u32, a as u32, b as u32);
                if touched & mask_bits != 0 {
                    adds_approx += 1;
                    CompiledOp::AddApprox { dst, a, b }
                } else {
                    CompiledOp::AddExact { dst, a, b }
                }
            }
            SkelOp::Mul {
                dst,
                a,
                b,
                shift,
                pc,
                touched,
            } => {
                let (dst, a, b) = (dst as u32, a as u32, b as u32);
                if touched & mask_bits != 0 {
                    muls_approx += 1;
                    CompiledOp::MulApprox {
                        dst,
                        a,
                        b,
                        shift,
                        pc,
                    }
                } else {
                    CompiledOp::MulExact {
                        dst,
                        a,
                        b,
                        shift,
                        pc,
                    }
                }
            }
        }));
        self.mask_bits = mask_bits;
        self.counts = ArithCounts {
            adds_total: skeleton.adds_total,
            adds_approx,
            muls_total: skeleton.muls_total,
            muls_approx,
        };
        self.profile = ArithProfile::from_counts(self.counts, &self.add_costs, &self.mul_costs);
    }

    /// The design's run profile, computed analytically at compile time —
    /// identical to what [`CompiledProgram::run`] returns in its outcome.
    pub fn profile(&self) -> ArithProfile {
        self.profile
    }

    /// The raw variable-selection bits this program is specialised to.
    pub fn mask_bits(&self) -> u64 {
        self.mask_bits
    }

    /// The shared offset-resolved skeleton.
    pub fn skeleton(&self) -> &Arc<CompiledSkeleton> {
        &self.skeleton
    }

    /// Executes the compiled design against one input image (see
    /// [`crate::exec::Executor::initial_memory`]), reusing `scratch`'s
    /// memory buffer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OperandOverflow`] if a multiplication operand's
    /// magnitude exceeds the multiplier width.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the program's cell count.
    pub fn run(&self, image: &[i64], scratch: &mut ExecScratch) -> Result<ExecOutcome, VmError> {
        assert_eq!(
            image.len(),
            self.skeleton.total_cells,
            "memory image size does not match the program"
        );
        let mem = &mut scratch.mem;
        mem.clear();
        mem.extend_from_slice(image);

        self.exec_ops(&self.ops, mem, &self.add_model, &self.mul_model)?;

        let mut outputs = Vec::with_capacity(self.skeleton.output_cells);
        for &(base, len) in &self.skeleton.outputs {
            outputs.extend_from_slice(&mem[base..base + len]);
        }
        Ok(ExecOutcome {
            outputs,
            profile: self.profile,
        })
    }

    /// The execution loop shared by [`CompiledProgram::run`] and the
    /// factored group kernel: dispatches once on the adder kind (see
    /// [`with_add_kernel!`]) and runs the monomorphised loop.
    fn exec_ops(
        &self,
        ops: &[CompiledOp],
        mem: &mut [i64],
        add_model: &AdderModel,
        mul_model: &MulModel,
    ) -> Result<(), VmError> {
        with_add_kernel!(add_model, self.skeleton.add_width, |add| self
            .exec_ops_with(ops, mem, add, mul_model))
    }

    /// The monomorphised loop behind [`CompiledProgram::exec_ops`]: pure
    /// loads, arithmetic, and stores against `mem`, with `add` the fully
    /// resolved approximate-add kernel.
    fn exec_ops_with(
        &self,
        ops: &[CompiledOp],
        mem: &mut [i64],
        add: impl Fn(i64, i64) -> i64,
        mul_model: &MulModel,
    ) -> Result<(), VmError> {
        for op in ops {
            match *op {
                CompiledOp::Const { dst, value } => mem[dst as usize] = value,
                CompiledOp::Copy { dst, src } => mem[dst as usize] = mem[src as usize],
                CompiledOp::AddExact { dst, a, b } => {
                    mem[dst as usize] = mem[a as usize].wrapping_add(mem[b as usize]);
                }
                CompiledOp::AddApprox { dst, a, b } => {
                    mem[dst as usize] = add(mem[a as usize], mem[b as usize]);
                }
                CompiledOp::MulExact {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let (x, y) = (mem[a as usize], mem[b as usize]);
                    self.check_mul_operands(x, y, pc)?;
                    mem[dst as usize] = x.wrapping_mul(y) >> shift;
                }
                CompiledOp::MulApprox {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let (x, y) = (mem[a as usize], mem[b as usize]);
                    self.check_mul_operands(x, y, pc)?;
                    mem[dst as usize] = mul_signed(mul_model, x, y) >> shift;
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn check_mul_operands(&self, x: i64, y: i64, pc: u32) -> Result<(), VmError> {
        for v in [x, y] {
            if v.unsigned_abs() > self.mul_mask {
                return Err(VmError::OperandOverflow {
                    pc: pc as usize,
                    value: v,
                    width_bits: self.mul_width_bits,
                });
            }
        }
        Ok(())
    }

    /// Evaluates a whole neighbourhood of designs against one input image,
    /// compiling each design's variant from the shared skeleton in place —
    /// the batch kernel behind `PreparedWorkload::run_batch` and the exact
    /// backend's `evaluate_batch`.
    ///
    /// Runs of consecutive configurations sharing a variable selection form
    /// a *group*: the opcode rewrite runs once per group (operator swaps are
    /// O(1)), and groups of at least [`MIN_FACTORED_GROUP`] designs execute
    /// through the factored kernel (`run_group`), which
    /// runs adder-independent work once per distinct multiplier instead of
    /// once per design and dedups model-equivalent designs outright. On top
    /// of that, outcomes are cached across groups keyed by
    /// `(flag signature, adder, mul)` — selections that flag every
    /// instruction identically ([`CompiledSkeleton::flag_signature`])
    /// compile to the same opcode vector, so their designs are evaluated
    /// once per equivalence class for the whole batch. Callers ordering a
    /// sweep mask-major therefore pay `distinct signatures` compile passes
    /// and dramatically fewer instruction executions than `designs ×
    /// program length`. Results keep the order of `configs` and are
    /// bit-identical to evaluating each design alone.
    ///
    /// # Errors
    ///
    /// Propagates binding and execution errors; evaluation stops at the
    /// first failing configuration (in `configs` order, exactly as
    /// sequential evaluation would).
    pub fn run_batch(
        &mut self,
        lib: &OperatorLibrary,
        image: &[i64],
        configs: &[(AdderId, MulId, u64)],
    ) -> Result<Vec<ExecOutcome>, VmError> {
        let mut scratch = ExecScratch::new();
        let mut outcomes = Vec::with_capacity(configs.len());
        let mut stats = BatchStats {
            designs: configs.len() as u64,
            ..BatchStats::default()
        };
        // Cross-group equivalence cache: a `(flag signature, adder, mul)`
        // triple fully determines a design's outcome, so selections that
        // flag the program identically share evaluations outright.
        let mut cache: SignatureCache = Vec::new();
        let mut start = 0;
        while start < configs.len() {
            let bits = configs[start].2;
            let mut end = start + 1;
            while end < configs.len() && configs[end].2 == bits {
                end += 1;
            }
            let group = &configs[start..end];
            let sig = self.skeleton.flag_signature(bits);
            let entry = match cache.iter().position(|&(s, _)| s == sig) {
                Some(i) => i,
                None => {
                    cache.push((sig, Vec::new()));
                    cache.len() - 1
                }
            };
            // First occurrences the cache cannot answer, in group order.
            let mut missing: Vec<(AdderId, MulId, u64)> = Vec::new();
            for &(adder, mul, _) in group {
                let seen = cache[entry]
                    .1
                    .iter()
                    .any(|&((a, m), _)| (a, m) == (adder, mul))
                    || missing.iter().any(|&(a, m, _)| (a, m) == (adder, mul));
                if !seen {
                    missing.push((adder, mul, bits));
                }
            }
            stats.groups += 1;
            stats.signature_hits += (group.len() - missing.len()) as u64;
            if !missing.is_empty() {
                self.select(bits);
                let factored = if missing.len() >= MIN_FACTORED_GROUP {
                    let mut group_stats = BatchStats::default();
                    match self.run_group(lib, image, &missing, &mut group_stats) {
                        Ok(outs) => {
                            stats.merge(&group_stats);
                            Some(outs)
                        }
                        Err(_) => None,
                    }
                } else {
                    None
                };
                let results = match factored {
                    Some(outs) => outs,
                    // Small remainder — or a failing one: replay it
                    // sequentially so the first error surfaces in exact
                    // `configs` order with the interpreter's `pc`
                    // (equivalent designs fail identically, so a class
                    // representative's error *is* the first duplicate's).
                    None => {
                        stats.sequential_designs += missing.len() as u64;
                        let mut outs = Vec::with_capacity(missing.len());
                        for &(adder, mul, _) in &missing {
                            let binding = Binding::for_widths(
                                lib,
                                self.skeleton.add_width,
                                self.skeleton.mul_width,
                                adder,
                                mul,
                            )?;
                            self.rebind(&binding);
                            outs.push(self.run(image, &mut scratch)?);
                        }
                        outs
                    }
                };
                let slot = &mut cache[entry].1;
                for (&(adder, mul, _), out) in missing.iter().zip(results) {
                    slot.push(((adder, mul), out));
                }
            }
            let slot = &cache[entry].1;
            for &(adder, mul, _) in group {
                let (_, out) = slot
                    .iter()
                    .find(|&&((a, m), _)| (a, m) == (adder, mul))
                    .expect("every group design was evaluated above");
                outcomes.push(out.clone());
            }
            start = end;
        }
        self.batch.merge(&stats);
        Ok(outcomes)
    }

    /// Cumulative [`BatchStats`] over every `run_batch` call on this
    /// program since construction (or the last
    /// [`CompiledProgram::reset_batch_stats`]).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// Zeroes the cumulative [`BatchStats`].
    pub fn reset_batch_stats(&mut self) {
        self.batch = BatchStats::default();
    }

    /// Factored execution of one mask-sharing group of designs — the
    /// neighbourhood kernel.
    ///
    /// The specialised opcode vector is first rewritten into SSA form over
    /// an extended memory (original cells keep the input image; every write
    /// allocates a fresh cell) while being split into two stages by model
    /// dependence:
    ///
    /// * **stage 1** — ops whose value cannot depend on the adder model
    ///   (no approximate addition upstream). These run once per *distinct
    ///   multiplier* in the group — or just once, if no approximate
    ///   multiplication lands in the stage.
    /// * **stage 2** — everything downstream of an approximate addition.
    ///   These run per design, batched by adder and interleaved across the
    ///   batch's lanes ([`CompiledProgram::exec_batch_with`]): SSA
    ///   renaming guarantees stage 2 only writes fresh (private, per-lane)
    ///   cells, so the shared stage-1 values are never clobbered and no
    ///   per-design copy is needed.
    ///
    /// Designs whose effective models coincide (e.g. any operator pair
    /// under the empty selection, or any adder when no addition is
    /// approximate) are deduplicated: the outcome — outputs *and* profile —
    /// is provably identical, so it is computed once and cloned.
    ///
    /// # Errors
    ///
    /// Any error aborts the whole group; the caller replays it
    /// sequentially so error ordering matches the interpreter.
    fn run_group(
        &self,
        lib: &OperatorLibrary,
        image: &[i64],
        group: &[(AdderId, MulId, u64)],
        stats: &mut BatchStats,
    ) -> Result<Vec<ExecOutcome>, VmError> {
        const ADDER_DEP: u8 = 1;
        const MUL_DEP: u8 = 2;

        // --- SSA renaming + stage split (one linear pass per group).
        let n = self.skeleton.total_cells;
        let mut cur: Vec<u32> = (0..n as u32).collect();
        let mut cls: Vec<u8> = vec![0; n];
        let mut stage1: Vec<CompiledOp> = Vec::new();
        let mut stage2: Vec<CompiledOp> = Vec::new();
        let mut stage1_mul_dependent = false;
        for op in &self.ops {
            match *op {
                CompiledOp::Const { dst, value } => {
                    let d = cls.len() as u32;
                    cls.push(0);
                    cur[dst as usize] = d;
                    stage1.push(CompiledOp::Const { dst: d, value });
                }
                CompiledOp::Copy { dst, src } => {
                    let s = cur[src as usize];
                    let c = cls[s as usize];
                    let d = cls.len() as u32;
                    cls.push(c);
                    cur[dst as usize] = d;
                    let stage = if c & ADDER_DEP == 0 {
                        &mut stage1
                    } else {
                        &mut stage2
                    };
                    stage.push(CompiledOp::Copy { dst: d, src: s });
                }
                CompiledOp::AddExact { dst, a, b } => {
                    let (ra, rb) = (cur[a as usize], cur[b as usize]);
                    let c = cls[ra as usize] | cls[rb as usize];
                    let d = cls.len() as u32;
                    cls.push(c);
                    cur[dst as usize] = d;
                    let stage = if c & ADDER_DEP == 0 {
                        &mut stage1
                    } else {
                        &mut stage2
                    };
                    stage.push(CompiledOp::AddExact {
                        dst: d,
                        a: ra,
                        b: rb,
                    });
                }
                CompiledOp::AddApprox { dst, a, b } => {
                    let (ra, rb) = (cur[a as usize], cur[b as usize]);
                    let c = cls[ra as usize] | cls[rb as usize] | ADDER_DEP;
                    let d = cls.len() as u32;
                    cls.push(c);
                    cur[dst as usize] = d;
                    stage2.push(CompiledOp::AddApprox {
                        dst: d,
                        a: ra,
                        b: rb,
                    });
                }
                CompiledOp::MulExact {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let (ra, rb) = (cur[a as usize], cur[b as usize]);
                    let c = cls[ra as usize] | cls[rb as usize];
                    let d = cls.len() as u32;
                    cls.push(c);
                    cur[dst as usize] = d;
                    let stage = if c & ADDER_DEP == 0 {
                        &mut stage1
                    } else {
                        &mut stage2
                    };
                    stage.push(CompiledOp::MulExact {
                        dst: d,
                        a: ra,
                        b: rb,
                        shift,
                        pc,
                    });
                }
                CompiledOp::MulApprox {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let (ra, rb) = (cur[a as usize], cur[b as usize]);
                    let c = cls[ra as usize] | cls[rb as usize] | MUL_DEP;
                    let d = cls.len() as u32;
                    cls.push(c);
                    cur[dst as usize] = d;
                    let stage = if c & ADDER_DEP == 0 {
                        stage1_mul_dependent = true;
                        &mut stage1
                    } else {
                        &mut stage2
                    };
                    stage.push(CompiledOp::MulApprox {
                        dst: d,
                        a: ra,
                        b: rb,
                        shift,
                        pc,
                    });
                }
            }
        }
        // --- Remap the extended cell space: *shared* cells (originals +
        // stage-1 results; one buffer per distinct multiplier) get dense
        // low indices, *private* cells (stage-2 results; one lane per
        // design) are tagged with [`PRIV`]. Defs dominate uses, so one
        // in-order pass per stage rewrites every operand.
        let total_ext = cls.len();
        assert!(total_ext < PRIV as usize, "program exceeds the cell space");
        let mut remap: Vec<u32> = (0..total_ext as u32).collect();
        let mut next_shared = n as u32;
        for op in &mut stage1 {
            match op {
                CompiledOp::Const { dst, .. } => {
                    remap[*dst as usize] = next_shared;
                    *dst = next_shared;
                    next_shared += 1;
                }
                CompiledOp::Copy { dst, src } => {
                    *src = remap[*src as usize];
                    remap[*dst as usize] = next_shared;
                    *dst = next_shared;
                    next_shared += 1;
                }
                CompiledOp::AddExact { dst, a, b }
                | CompiledOp::AddApprox { dst, a, b }
                | CompiledOp::MulExact { dst, a, b, .. }
                | CompiledOp::MulApprox { dst, a, b, .. } => {
                    *a = remap[*a as usize];
                    *b = remap[*b as usize];
                    remap[*dst as usize] = next_shared;
                    *dst = next_shared;
                    next_shared += 1;
                }
            }
        }
        let n_shared = next_shared as usize;
        let mut next_priv = 0u32;
        for op in &mut stage2 {
            match op {
                CompiledOp::Const { dst, .. } => {
                    remap[*dst as usize] = PRIV | next_priv;
                    *dst = PRIV | next_priv;
                    next_priv += 1;
                }
                CompiledOp::Copy { dst, src } => {
                    *src = remap[*src as usize];
                    remap[*dst as usize] = PRIV | next_priv;
                    *dst = PRIV | next_priv;
                    next_priv += 1;
                }
                CompiledOp::AddExact { dst, a, b }
                | CompiledOp::AddApprox { dst, a, b }
                | CompiledOp::MulExact { dst, a, b, .. }
                | CompiledOp::MulApprox { dst, a, b, .. } => {
                    *a = remap[*a as usize];
                    *b = remap[*b as usize];
                    remap[*dst as usize] = PRIV | next_priv;
                    *dst = PRIV | next_priv;
                    next_priv += 1;
                }
            }
        }
        let priv_count = next_priv as usize;
        let out_ids: Vec<u32> = self
            .skeleton
            .outputs
            .iter()
            .flat_map(|&(base, len)| base..base + len)
            .map(|cell| remap[cur[cell] as usize])
            .collect();

        // --- Dedup designs whose effective models coincide (outputs *and*
        // profile are provably identical), keeping `group` order.
        let adds_dep = self.counts.adds_approx > 0;
        let muls_dep = self.counts.muls_approx > 0;
        let mut memo: Vec<(EffectiveKey, usize)> = Vec::new();
        let mut uniq: Vec<(AdderId, MulId)> = Vec::new();
        let mut slot: Vec<usize> = Vec::with_capacity(group.len());
        for &(adder, mul, _) in group {
            let key = (adds_dep.then_some(adder), muls_dep.then_some(mul));
            let i = match memo.iter().find(|&&(k, _)| k == key) {
                Some(&(_, i)) => i,
                None => {
                    let i = uniq.len();
                    memo.push((key, i));
                    uniq.push((adder, mul));
                    i
                }
            };
            slot.push(i);
        }

        // Per-lane models and analytic profiles.
        let mut lane_add: Vec<AdderModel> = Vec::with_capacity(uniq.len());
        let mut lane_mul: Vec<MulModel> = Vec::with_capacity(uniq.len());
        let mut lane_profile: Vec<ArithProfile> = Vec::with_capacity(uniq.len());
        for &(adder, mul) in &uniq {
            let binding = Binding::for_widths(
                lib,
                self.skeleton.add_width,
                self.skeleton.mul_width,
                adder,
                mul,
            )?;
            lane_add.push(binding.adder().model);
            lane_mul.push(binding.mul().model);
            lane_profile.push(ArithProfile::from_counts(
                self.counts,
                binding.add_costs(),
                binding.mul_costs(),
            ));
        }

        stats.kernel_designs += uniq.len() as u64;
        stats.dedup_hits += (group.len() - uniq.len()) as u64;

        // --- Stage 1: once per distinct multiplier (just once when no
        // approximate multiplication lands in the stage).
        let stage1_started = std::time::Instant::now();
        let mut base_mem: Vec<i64> = Vec::with_capacity(n_shared);
        base_mem.extend_from_slice(image);
        base_mem.resize(n_shared, 0);
        let mut mems: Vec<(Option<MulId>, Vec<i64>)> = Vec::new();
        let mut mem_of: Vec<usize> = Vec::with_capacity(uniq.len());
        for (i, &(_, mul)) in uniq.iter().enumerate() {
            let mkey = stage1_mul_dependent.then_some(mul);
            let idx = match mems.iter().position(|(k, _)| *k == mkey) {
                Some(j) => j,
                None => {
                    let mut mem = base_mem.clone();
                    self.exec_ops(&stage1, &mut mem, &lane_add[i], &lane_mul[i])?;
                    mems.push((mkey, mem));
                    mems.len() - 1
                }
            };
            mem_of.push(idx);
        }
        stats.stage1_ns += stage1_started.elapsed().as_nanos() as u64;

        // --- Stage 2: lanes batched by adder (one monomorphised kernel
        // per batch), executed op-by-op across the batch so independent
        // designs' dependency chains overlap instead of serialising.
        let stage2_started = std::time::Instant::now();
        let mut order: Vec<usize> = (0..uniq.len()).collect();
        order.sort_unstable_by_key(|&i| uniq[i].0);
        let mut outputs_per_lane: Vec<Vec<i64>> = vec![Vec::new(); uniq.len()];
        let mut privs: Vec<i64> = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let adder = uniq[order[start]].0;
            let mut end = start + 1;
            while end < order.len() && uniq[order[end]].0 == adder {
                end += 1;
            }
            let lanes = &order[start..end];
            let k = lanes.len();
            let shareds: Vec<&[i64]> = lanes
                .iter()
                .map(|&i| mems[mem_of[i]].1.as_slice())
                .collect();
            let mul_models: Vec<MulModel> = lanes.iter().map(|&i| lane_mul[i]).collect();
            privs.clear();
            privs.resize(priv_count * k, 0);
            stats.kernel_invocations += 1;
            self.exec_batch(
                &stage2,
                &shareds,
                &mut privs,
                &lane_add[lanes[0]],
                &mul_models,
            )?;
            for (lane, &i) in lanes.iter().enumerate() {
                outputs_per_lane[i] = out_ids
                    .iter()
                    .map(|&id| {
                        if id & PRIV != 0 {
                            privs[(id & !PRIV) as usize * k + lane]
                        } else {
                            shareds[lane][id as usize]
                        }
                    })
                    .collect();
            }
            start = end;
        }
        stats.stage2_ns += stage2_started.elapsed().as_nanos() as u64;

        // --- Assemble in `group` order; duplicates clone their class
        // representative's outcome.
        let mut first_pos: Vec<Option<usize>> = vec![None; uniq.len()];
        let mut outcomes: Vec<ExecOutcome> = Vec::with_capacity(group.len());
        for &i in &slot {
            match first_pos[i] {
                Some(p) => {
                    let outcome = outcomes[p].clone();
                    outcomes.push(outcome);
                }
                None => {
                    first_pos[i] = Some(outcomes.len());
                    outcomes.push(ExecOutcome {
                        outputs: std::mem::take(&mut outputs_per_lane[i]),
                        profile: lane_profile[i],
                    });
                }
            }
        }
        Ok(outcomes)
    }

    /// Stage-2 batch executor: dispatches once on the batch-wide adder kind
    /// and runs [`CompiledProgram::exec_batch_with`].
    fn exec_batch(
        &self,
        ops: &[CompiledOp],
        shareds: &[&[i64]],
        privs: &mut [i64],
        add_model: &AdderModel,
        mul_models: &[MulModel],
    ) -> Result<(), VmError> {
        with_add_kernel!(add_model, self.skeleton.add_width, |add| self
            .exec_batch_with(ops, shareds, privs, add, mul_models))
    }

    /// Runs remapped stage-2 `ops` for every lane of a batch **op-by-op
    /// across lanes**: lane `d` reads shared cells from `shareds[d]`,
    /// reads/writes private cells in its stripe of `privs` (layout
    /// `[cell][lane]`), and multiplies through `mul_models[d]`; all lanes
    /// share the monomorphised `add` kernel. Interleaving the lanes
    /// overlaps their serial accumulation chains — the latency bound of
    /// running designs one at a time — turning the batch throughput-bound.
    fn exec_batch_with(
        &self,
        ops: &[CompiledOp],
        shareds: &[&[i64]],
        privs: &mut [i64],
        add: impl Fn(i64, i64) -> i64,
        mul_models: &[MulModel],
    ) -> Result<(), VmError> {
        let k = shareds.len();
        // Reads `privs` (never the cell being written — SSA guarantees
        // freshness) or the lane's shared buffer; the tag branch is the
        // same for every lane of an op, so it predicts perfectly.
        macro_rules! ld {
            ($i:expr, $d:expr) => {{
                let i = $i;
                if i & PRIV != 0 {
                    privs[(i & !PRIV) as usize * k + $d]
                } else {
                    shareds[$d][i as usize]
                }
            }};
        }
        for op in ops {
            match *op {
                CompiledOp::Const { dst, value } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        privs[r + d] = value;
                    }
                }
                CompiledOp::Copy { dst, src } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        privs[r + d] = ld!(src, d);
                    }
                }
                CompiledOp::AddExact { dst, a, b } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        privs[r + d] = ld!(a, d).wrapping_add(ld!(b, d));
                    }
                }
                CompiledOp::AddApprox { dst, a, b } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        privs[r + d] = add(ld!(a, d), ld!(b, d));
                    }
                }
                CompiledOp::MulExact {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        let (x, y) = (ld!(a, d), ld!(b, d));
                        self.check_mul_operands(x, y, pc)?;
                        privs[r + d] = x.wrapping_mul(y) >> shift;
                    }
                }
                CompiledOp::MulApprox {
                    dst,
                    a,
                    b,
                    shift,
                    pc,
                } => {
                    let r = (dst & !PRIV) as usize * k;
                    for d in 0..k {
                        let (x, y) = (ld!(a, d), ld!(b, d));
                        self.check_mul_operands(x, y, pc)?;
                        privs[r + d] = mul_signed(&mul_models[d], x, y) >> shift;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Smallest mask-sharing group [`CompiledProgram::run_batch`] routes
/// through the factored kernel; smaller groups run design-by-design
/// (factoring has a per-group setup pass to amortise).
pub const MIN_FACTORED_GROUP: usize = 3;

/// Per-signature memo of already-evaluated designs, shared across every
/// group of a batch: one `(adder, mul) → outcome` table per distinct
/// flag signature ([`CompiledSkeleton::flag_signature`]).
type SignatureCache = Vec<(u64, Vec<((AdderId, MulId), ExecOutcome)>)>;

/// A design's *effective* models under the active selection: `None` on
/// an axis the mask never exercises approximately, so designs differing
/// only there compare equal and dedup.
type EffectiveKey = (Option<AdderId>, Option<MulId>);

/// Tag bit marking a *private* (per-design, stage-2) cell id in the
/// factored kernel's remapped operand space; untagged ids index the shared
/// stage-1 buffers.
const PRIV: u32 = 1 << 31;

/// The sliced-ALU embedding of [`sliced_add`], generic over the low-part
/// adder kernel so each [`ax_operators::AdderKind`] monomorphises into a
/// branch-free inline sequence. Must stay structurally identical to
/// [`sliced_add`] — the differential tests pin the equivalence.
#[inline(always)]
fn sliced(a: i64, b: i64, width: BitWidth, low_add: impl Fn(u64, u64) -> u64) -> i64 {
    let bits = width.bits();
    let mask = width.mask();
    let low = low_add((a as u64) & mask, (b as u64) & mask);
    let carry = (low >> bits) as i64;
    let high = (a >> bits).wrapping_add(b >> bits).wrapping_add(carry);
    (high << bits) | (low & mask) as i64
}

/// Notes on exactness (checked by the `compiled_matches_interpreter_*`
/// tests and the cross-crate differential suite):
///
/// * **`AddExact` ≡ precise sliced add.** The interpreter's precise path
///   splits each operand at the add width, feeds the low parts through the
///   exact adder (low sum + carry) and adds the upper parts with
///   `wrapping_add`, then reassembles. That is the standard carry
///   decomposition of two's-complement addition — equal to
///   `a.wrapping_add(b)` for **all** `i64` pairs.
/// * **`MulExact` ≡ precise sign-magnitude mul.** The interpreter's precise
///   path computes `|a|·|b|` exactly in `u64` (operands are pre-checked to
///   the multiplier width, so the product cannot wrap `u64`) and applies
///   the sign — congruent mod 2⁶⁴ to `a.wrapping_mul(b)`, hence
///   bit-identical after the cast.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_from_image, Executor};
    use crate::instrument::VarMask;
    use crate::ir::ProgramBuilder;

    fn lib() -> OperatorLibrary {
        OperatorLibrary::evoapprox()
    }

    /// dot product of two length-3 vectors on 8-bit operators (same shape
    /// as the interpreter's test kernel).
    fn dot3() -> Program {
        let mut pb = ProgramBuilder::new("dot3", BitWidth::W8, BitWidth::W8);
        let x = pb.input("x", 3);
        let y = pb.input("y", 3);
        let p = pb.temp("p", 1);
        let acc = pb.output("acc", 1);
        pb.konst(acc.at(0), 0);
        for i in 0..3 {
            pb.mul(p.at(0), x.at(i), y.at(i), 0);
            pb.add(acc.at(0), acc.at(0), p.at(0));
        }
        pb.build().unwrap()
    }

    fn image(prog: &Program, x: &[i64], y: &[i64]) -> Vec<i64> {
        Executor::new(prog)
            .with_input("x", x)
            .unwrap()
            .with_input("y", y)
            .unwrap()
            .initial_memory()
            .unwrap()
    }

    #[test]
    fn compiled_matches_interpreter_across_the_whole_space() {
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[3, 5, 7], &[11, 13, 2]);
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let mut mask = VarMask::none(&prog);
        let mut scratch = ExecScratch::new();
        let mut compiled_scratch = ExecScratch::new();
        for adder in 0..6 {
            for mul in 0..6 {
                let binding = Binding::new(&lib, &prog, AdderId(adder), MulId(mul)).unwrap();
                let mut compiled = skeleton.compile(&binding, 0);
                for bits in 0..(1u64 << mask.len()) {
                    mask.set_raw_bits(bits);
                    compiled.select(bits);
                    let reference =
                        run_from_image(&prog, &img, &binding, &mask, &mut scratch).unwrap();
                    let got = compiled.run(&img, &mut compiled_scratch).unwrap();
                    assert_eq!(got, reference, "adder {adder}, mul {mul}, bits {bits:#b}");
                    assert_eq!(compiled.profile(), reference.profile);
                }
            }
        }
    }

    #[test]
    fn rebind_matches_fresh_compile() {
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[100, 101, 102], &[55, 66, 77]);
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let b0 = Binding::new(&lib, &prog, AdderId(0), MulId(0)).unwrap();
        let b5 = Binding::new(&lib, &prog, AdderId(5), MulId(5)).unwrap();
        let bits = 0b1011;

        let mut reused = skeleton.compile(&b0, bits);
        reused.rebind(&b5);
        let fresh = skeleton.compile(&b5, bits);

        let mut s = ExecScratch::new();
        assert_eq!(
            reused.run(&img, &mut s).unwrap(),
            fresh.run(&img, &mut s).unwrap()
        );
        assert_eq!(reused.profile(), fresh.profile());
    }

    #[test]
    fn run_batch_matches_sequential_specialisation() {
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[9, 8, 7], &[1, 2, 3]);
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let configs = [
            (AdderId(0), MulId(0), 0u64),
            (AdderId(3), MulId(2), 0b101),
            (AdderId(5), MulId(5), 0b1111),
            (AdderId(1), MulId(4), 0b1111), // mask shared with previous
        ];
        let precise = Binding::precise(&lib, &prog).unwrap();
        let mut batcher = skeleton.compile(&precise, 0);
        let batch = batcher.run_batch(&lib, &img, &configs).unwrap();

        let mut mask = VarMask::none(&prog);
        let mut scratch = ExecScratch::new();
        for (&(a, m, bits), got) in configs.iter().zip(&batch) {
            let binding = Binding::new(&lib, &prog, a, m).unwrap();
            mask.set_raw_bits(bits);
            let reference = run_from_image(&prog, &img, &binding, &mask, &mut scratch).unwrap();
            assert_eq!(*got, reference);
        }
    }

    #[test]
    fn factored_batch_matches_interpreter_mask_major() {
        // A full mask-major sweep: groups of 36 designs per mask (large
        // enough for the factored kernel), masks sharing flag signatures
        // (exercising the cross-group cache), and model-equivalent designs
        // inside each group (exercising the dedup).
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[3, 5, 7], &[11, 13, 2]);
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let mut configs = Vec::new();
        for bits in 0..(1u64 << prog.approximable_vars().len()) {
            for adder in 0..6 {
                for mul in 0..6 {
                    configs.push((AdderId(adder), MulId(mul), bits));
                }
            }
        }
        let precise = Binding::precise(&lib, &prog).unwrap();
        let mut batcher = skeleton.compile(&precise, 0);
        let batch = batcher.run_batch(&lib, &img, &configs).unwrap();
        assert_eq!(batch.len(), configs.len());

        let mut mask = VarMask::none(&prog);
        let mut scratch = ExecScratch::new();
        for (&(a, m, bits), got) in configs.iter().zip(&batch) {
            let binding = Binding::new(&lib, &prog, a, m).unwrap();
            mask.set_raw_bits(bits);
            let reference = run_from_image(&prog, &img, &binding, &mask, &mut scratch).unwrap();
            assert_eq!(
                *got, reference,
                "adder {}, mul {}, bits {bits:#b}",
                a.0, m.0
            );
        }
    }

    #[test]
    fn flag_signatures_partition_the_selections() {
        // dot3 has two flag classes (every mul touches {x, y, p}, every add
        // touches {acc, p}), so its 16 selections collapse to 4 signatures.
        let prog = dot3();
        let skeleton = CompiledSkeleton::new(&prog);
        let sigs: std::collections::HashSet<u64> =
            (0..16).map(|bits| skeleton.flag_signature(bits)).collect();
        assert_eq!(sigs.len(), 4);
    }

    #[test]
    fn batch_error_matches_sequential_order() {
        // An input overflowing the multiplier width: the batch must surface
        // the interpreter's exact error (pc, value, width) even though the
        // factored kernel evaluates designs out of order internally.
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[300, 0, 0], &[1, 0, 0]);
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let mut configs = Vec::new();
        for adder in 0..6 {
            for mul in 0..6 {
                configs.push((AdderId(adder), MulId(mul), 0b1111));
            }
        }
        let precise = Binding::precise(&lib, &prog).unwrap();
        let mut batcher = skeleton.compile(&precise, 0);
        let got = batcher.run_batch(&lib, &img, &configs).unwrap_err();

        let binding = Binding::new(&lib, &prog, AdderId(0), MulId(0)).unwrap();
        let mut mask = VarMask::none(&prog);
        mask.set_raw_bits(0b1111);
        let reference =
            run_from_image(&prog, &img, &binding, &mask, &mut ExecScratch::new()).unwrap_err();
        assert_eq!(got, reference);
    }

    #[test]
    fn overflow_error_matches_interpreter() {
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[300, 0, 0], &[1, 0, 0]);
        let binding = Binding::precise(&lib, &prog).unwrap();
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let compiled = skeleton.compile(&binding, 0);
        let got = compiled.run(&img, &mut ExecScratch::new()).unwrap_err();
        let reference = run_from_image(
            &prog,
            &img,
            &binding,
            &VarMask::none(&prog),
            &mut ExecScratch::new(),
        )
        .unwrap_err();
        assert_eq!(got, reference, "pc/value/width must all round-trip");
    }

    #[test]
    fn static_profile_is_the_run_profile() {
        let prog = dot3();
        let lib = lib();
        let img = image(&prog, &[1, 2, 3], &[4, 5, 6]);
        let binding = Binding::new(&lib, &prog, AdderId(2), MulId(3)).unwrap();
        let skeleton = Arc::new(CompiledSkeleton::new(&prog));
        let compiled = skeleton.compile(&binding, 0b110);
        let out = compiled.run(&img, &mut ExecScratch::new()).unwrap();
        assert_eq!(out.profile, compiled.profile());
        assert_eq!(out.profile.adds_total, 3);
        assert_eq!(out.profile.muls_total, 3);
    }
}
