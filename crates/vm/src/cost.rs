//! Per-run cost accounting.
//!
//! The paper evaluates configurations on pre-characterised operators: the
//! power and computation time of a run are the sums of the per-operation
//! constants of whichever operator executed each addition and multiplication
//! (Δpower and Δtime in Equation 1 are then differences of these sums
//! against the all-precise run). Because every instruction of a design
//! executes either the bound approximate operator or the width class's
//! precise one, those sums are fully determined by **four counts** — the
//! interpreter only tallies counts ([`CostMeter`]) and the totals are
//! computed analytically at the end ([`ArithProfile::from_counts`]). The
//! compiled engine ([`crate::compile`]) derives the same counts statically
//! at specialisation time and calls the same helper, which is what makes
//! the two engines' profiles bit-identical: one formula, one term order.

use serde::{Deserialize, Serialize};

/// Power/time constants of one operator, captured from its spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Power per operation, milliwatts.
    pub power_mw: f64,
    /// Latency per operation, nanoseconds.
    pub time_ns: f64,
}

/// Aggregated arithmetic activity and cost of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArithProfile {
    /// Additions executed in total.
    pub adds_total: u64,
    /// Additions routed through the approximate adder.
    pub adds_approx: u64,
    /// Multiplications executed in total.
    pub muls_total: u64,
    /// Multiplications routed through the approximate multiplier.
    pub muls_approx: u64,
    /// Σ power over all executed additions and multiplications (mW units,
    /// matching the paper's accounting).
    pub power_mw: f64,
    /// Σ computation time over all executed additions and multiplications
    /// (ns).
    pub time_ns: f64,
}

impl ArithProfile {
    /// Builds the profile analytically from operation counts and the
    /// per-operator constants (`[precise, approximate]` cost pairs, as
    /// precomputed by [`crate::exec::Binding`]).
    ///
    /// This is the **single** place power/time totals are computed: the
    /// interpreter's [`CostMeter::finish`] and the compiled engine's static
    /// profile both funnel through it, so the two execution paths agree to
    /// the last bit regardless of instruction order.
    pub fn from_counts(
        counts: ArithCounts,
        add_costs: &[OpCost; 2],
        mul_costs: &[OpCost; 2],
    ) -> Self {
        let ArithCounts {
            adds_total,
            adds_approx,
            muls_total,
            muls_approx,
        } = counts;
        debug_assert!(adds_approx <= adds_total && muls_approx <= muls_total);
        let adds_precise = (adds_total - adds_approx) as f64;
        let muls_precise = (muls_total - muls_approx) as f64;
        // Fixed term order — never reorder: bit-identical profiles across
        // engines depend on it.
        let power_mw = adds_precise * add_costs[0].power_mw
            + adds_approx as f64 * add_costs[1].power_mw
            + muls_precise * mul_costs[0].power_mw
            + muls_approx as f64 * mul_costs[1].power_mw;
        let time_ns = adds_precise * add_costs[0].time_ns
            + adds_approx as f64 * add_costs[1].time_ns
            + muls_precise * mul_costs[0].time_ns
            + muls_approx as f64 * mul_costs[1].time_ns;
        Self {
            adds_total,
            adds_approx,
            muls_total,
            muls_approx,
            power_mw,
            time_ns,
        }
    }

    /// Fraction of arithmetic operations that executed approximately.
    pub fn approx_fraction(&self) -> f64 {
        let total = self.adds_total + self.muls_total;
        if total == 0 {
            0.0
        } else {
            (self.adds_approx + self.muls_approx) as f64 / total as f64
        }
    }
}

/// The four operation counts a run's cost totals are derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArithCounts {
    /// Additions executed in total.
    pub adds_total: u64,
    /// Additions routed through the approximate adder.
    pub adds_approx: u64,
    /// Multiplications executed in total.
    pub muls_total: u64,
    /// Multiplications routed through the approximate multiplier.
    pub muls_approx: u64,
}

/// Tallies operation counts during interpretation.
///
/// The meter records *which* operator class executed, not its constants —
/// the hot loop touches two integers per instruction and the f64 totals
/// are produced once at [`CostMeter::finish`] from the binding's
/// precomputed cost pairs.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    counts: ArithCounts,
}

impl CostMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one addition (approximate or precise).
    #[inline]
    pub fn record_add(&mut self, approximate: bool) {
        self.counts.adds_total += 1;
        self.counts.adds_approx += approximate as u64;
    }

    /// Records one multiplication (approximate or precise).
    #[inline]
    pub fn record_mul(&mut self, approximate: bool) {
        self.counts.muls_total += 1;
        self.counts.muls_approx += approximate as u64;
    }

    /// The accumulated counts.
    pub fn counts(&self) -> ArithCounts {
        self.counts
    }

    /// Computes the profile from the tallied counts and the operator
    /// constants (see [`ArithProfile::from_counts`]).
    pub fn finish(self, add_costs: &[OpCost; 2], mul_costs: &[OpCost; 2]) -> ArithProfile {
        ArithProfile::from_counts(self.counts, add_costs, mul_costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD_P: OpCost = OpCost {
        power_mw: 0.033,
        time_ns: 0.63,
    };
    const ADD_A: OpCost = OpCost {
        power_mw: 0.012,
        time_ns: 0.41,
    };
    const MUL_P: OpCost = OpCost {
        power_mw: 0.391,
        time_ns: 1.43,
    };
    const MUL_A: OpCost = OpCost {
        power_mw: 0.2,
        time_ns: 0.9,
    };

    #[test]
    fn meter_accumulates_counts_and_sums() {
        let mut m = CostMeter::new();
        m.record_add(false);
        m.record_add(true);
        m.record_mul(true);
        let p = m.finish(&[ADD_P, ADD_A], &[MUL_P, MUL_A]);
        assert_eq!(p.adds_total, 2);
        assert_eq!(p.adds_approx, 1);
        assert_eq!(p.muls_total, 1);
        assert_eq!(p.muls_approx, 1);
        assert!((p.power_mw - (0.033 + 0.012 + 0.2)).abs() < 1e-12);
        assert!((p.time_ns - (0.63 + 0.41 + 0.9)).abs() < 1e-12);
    }

    #[test]
    fn meter_and_from_counts_agree_exactly() {
        let mut m = CostMeter::new();
        for i in 0..17 {
            m.record_add(i % 3 == 0);
            if i % 2 == 0 {
                m.record_mul(i % 4 == 0);
            }
        }
        let counts = m.counts();
        let a = m.finish(&[ADD_P, ADD_A], &[MUL_P, MUL_A]);
        let b = ArithProfile::from_counts(counts, &[ADD_P, ADD_A], &[MUL_P, MUL_A]);
        assert_eq!(a, b, "one formula, one term order");
    }

    #[test]
    fn approx_fraction() {
        let mut m = CostMeter::new();
        for i in 0..4 {
            m.record_add(i % 2 == 0);
        }
        assert_eq!(
            m.finish(&[ADD_P, ADD_A], &[MUL_P, MUL_A]).approx_fraction(),
            0.5
        );
        assert_eq!(ArithProfile::default().approx_fraction(), 0.0);
    }
}
