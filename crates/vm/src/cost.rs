//! Per-run cost accounting.
//!
//! The paper evaluates configurations on pre-characterised operators: the
//! power and computation time of a run are the sums of the per-operation
//! constants of whichever operator executed each addition and multiplication
//! (Δpower and Δtime in Equation 1 are then differences of these sums
//! against the all-precise run). [`CostMeter`] accumulates those sums during
//! interpretation and produces an [`ArithProfile`].

use serde::{Deserialize, Serialize};

/// Power/time constants of one operator, captured from its spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Power per operation, milliwatts.
    pub power_mw: f64,
    /// Latency per operation, nanoseconds.
    pub time_ns: f64,
}

/// Aggregated arithmetic activity and cost of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ArithProfile {
    /// Additions executed in total.
    pub adds_total: u64,
    /// Additions routed through the approximate adder.
    pub adds_approx: u64,
    /// Multiplications executed in total.
    pub muls_total: u64,
    /// Multiplications routed through the approximate multiplier.
    pub muls_approx: u64,
    /// Σ power over all executed additions and multiplications (mW units,
    /// matching the paper's accounting).
    pub power_mw: f64,
    /// Σ computation time over all executed additions and multiplications
    /// (ns).
    pub time_ns: f64,
}

impl ArithProfile {
    /// Fraction of arithmetic operations that executed approximately.
    pub fn approx_fraction(&self) -> f64 {
        let total = self.adds_total + self.muls_total;
        if total == 0 {
            0.0
        } else {
            (self.adds_approx + self.muls_approx) as f64 / total as f64
        }
    }
}

/// Accumulates cost during interpretation.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    profile: ArithProfile,
}

impl CostMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one addition executed with the given operator cost.
    pub fn record_add(&mut self, cost: OpCost, approximate: bool) {
        self.profile.adds_total += 1;
        if approximate {
            self.profile.adds_approx += 1;
        }
        self.profile.power_mw += cost.power_mw;
        self.profile.time_ns += cost.time_ns;
    }

    /// Records one multiplication executed with the given operator cost.
    pub fn record_mul(&mut self, cost: OpCost, approximate: bool) {
        self.profile.muls_total += 1;
        if approximate {
            self.profile.muls_approx += 1;
        }
        self.profile.power_mw += cost.power_mw;
        self.profile.time_ns += cost.time_ns;
    }

    /// The accumulated profile.
    pub fn finish(self) -> ArithProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: OpCost = OpCost {
        power_mw: 0.033,
        time_ns: 0.63,
    };
    const MUL: OpCost = OpCost {
        power_mw: 0.391,
        time_ns: 1.43,
    };

    #[test]
    fn meter_accumulates_counts_and_sums() {
        let mut m = CostMeter::new();
        m.record_add(ADD, false);
        m.record_add(ADD, true);
        m.record_mul(MUL, true);
        let p = m.finish();
        assert_eq!(p.adds_total, 2);
        assert_eq!(p.adds_approx, 1);
        assert_eq!(p.muls_total, 1);
        assert_eq!(p.muls_approx, 1);
        assert!((p.power_mw - (0.033 * 2.0 + 0.391)).abs() < 1e-12);
        assert!((p.time_ns - (0.63 * 2.0 + 1.43)).abs() < 1e-12);
    }

    #[test]
    fn approx_fraction() {
        let mut m = CostMeter::new();
        for i in 0..4 {
            m.record_add(ADD, i % 2 == 0);
        }
        assert_eq!(m.finish().approx_fraction(), 0.5);
        assert_eq!(ArithProfile::default().approx_fraction(), 0.0);
    }
}
