//! Variable selection and automatic instruction instrumentation.
//!
//! The paper's approximation unit is the **variable**: a configuration
//! selects a subset of program variables, and every addition or
//! multiplication touching a selected variable executes on the approximate
//! operators. [`VarMask`] is the boolean selection vector
//! (`variables_approx = {a_0 .. a_{N-1} | a_i ∈ {0, 1}}` in the paper's
//! Equation 1) and [`instruction_flags`] derives the per-instruction
//! approximate/precise decision — the "automatic code instrumentation".

use crate::ir::{Program, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A selection of program variables for approximation.
///
/// The mask is indexed over the program's **approximable** variable list
/// (`Program::approximable_vars`), which is how the paper's environment
/// exposes it to the agent: bit `i` selects the `i`-th approximable variable.
///
/// ```
/// use ax_vm::ir::ProgramBuilder;
/// use ax_vm::instrument::VarMask;
/// use ax_operators::BitWidth;
///
/// # fn main() -> Result<(), ax_vm::VmError> {
/// let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
/// let a = pb.input("a", 1);
/// let y = pb.output("y", 1);
/// pb.copy(y.at(0), a.at(0));
/// let prog = pb.build()?;
///
/// let mut mask = VarMask::none(&prog);
/// assert_eq!(mask.count_selected(), 0);
/// mask.set(0, true);
/// assert!(mask.is_selected(0));
/// assert!(mask.selected_vars().contains(&a));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarMask {
    bits: u64,
    len: u32,
    /// Approximable variable ids, in mask-bit order.
    vars: Vec<VarId>,
}

impl VarMask {
    /// An empty selection over the program's approximable variables.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than 64 approximable variables (the
    /// paper's configurations are far below this; the DSE state space would
    /// be astronomically large anyway).
    pub fn none(program: &Program) -> Self {
        let vars = program.approximable_vars();
        assert!(
            vars.len() <= 64,
            "at most 64 approximable variables supported"
        );
        Self {
            bits: 0,
            len: vars.len() as u32,
            vars,
        }
    }

    /// A selection with every approximable variable chosen.
    pub fn all(program: &Program) -> Self {
        let mut m = Self::none(program);
        m.bits = if m.len == 64 {
            u64::MAX
        } else {
            (1u64 << m.len) - 1
        };
        m
    }

    /// Number of mask positions (approximable variables).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if the program has no approximable variables.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if mask position `i` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn is_selected(&self, i: u32) -> bool {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        (self.bits >> i) & 1 == 1
    }

    /// Sets mask position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: u32, selected: bool) {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        if selected {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Flips mask position `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn toggle(&mut self, i: u32) -> bool {
        assert!(i < self.len, "mask index {i} out of range {}", self.len);
        self.bits ^= 1 << i;
        self.is_selected(i)
    }

    /// Number of selected positions.
    pub fn count_selected(&self) -> u32 {
        self.bits.count_ones()
    }

    /// `true` if every position is selected — the paper's "variables
    /// contains all ones" termination condition.
    pub fn is_all_selected(&self) -> bool {
        self.count_selected() == self.len
    }

    /// The selected variable ids.
    pub fn selected_vars(&self) -> Vec<VarId> {
        (0..self.len)
            .filter(|&i| self.is_selected(i))
            .map(|i| self.vars[i as usize])
            .collect()
    }

    /// The raw bit pattern (low `len` bits meaningful) — used as part of the
    /// DSE state key.
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// Reconstructs a mask from raw bits over the same program.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has positions set at or above `len()`.
    pub fn with_bits(program: &Program, bits: u64) -> Self {
        let mut m = Self::none(program);
        m.set_raw_bits(bits);
        m
    }

    /// Replaces the whole selection in place — the batch-evaluation path
    /// reuses one mask across many configurations instead of rebuilding
    /// the variable table per design.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has positions set at or above `len()`.
    pub fn set_raw_bits(&mut self, bits: u64) {
        let valid = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        assert!(
            bits & !valid == 0,
            "bits {bits:#x} exceed mask length {}",
            self.len
        );
        self.bits = bits;
    }
}

impl fmt::Display for VarMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.is_selected(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// Computes the per-instruction approximation flags for a selection: flag
/// `pc` is `true` iff instruction `pc` is an addition or multiplication
/// touching at least one selected variable.
pub fn instruction_flags(program: &Program, mask: &VarMask) -> Vec<bool> {
    let mut flags = Vec::new();
    instruction_flags_into(program, mask, &mut flags);
    flags
}

/// Buffer-reusing variant of [`instruction_flags`]: clears and refills
/// `flags` instead of allocating a fresh vector, so batch evaluators can
/// amortise the allocation across thousands of designs.
pub fn instruction_flags_into(program: &Program, mask: &VarMask, flags: &mut Vec<bool>) {
    let selected = mask.selected_vars();
    let is_selected = |v: VarId| selected.contains(&v);
    flags.clear();
    flags.extend(
        program
            .instrs()
            .iter()
            .map(|i| i.is_arith() && i.touched_vars().into_iter().flatten().any(is_selected)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ProgramBuilder;
    use ax_operators::BitWidth;

    fn prog() -> Program {
        let mut pb = ProgramBuilder::new("p", BitWidth::W8, BitWidth::W8);
        let a = pb.input("a", 1);
        let b = pb.input("b", 1);
        let t = pb.temp("t", 1);
        let y = pb.output("y", 1);
        pb.not_approximable(y);
        pb.mul(t.at(0), a.at(0), b.at(0), 0); // touches a, b, t
        pb.add(y.at(0), y.at(0), t.at(0)); // touches y, t
        pb.copy(y.at(0), y.at(0)); // never approximable
        pb.build().unwrap()
    }

    #[test]
    fn none_and_all() {
        let p = prog();
        let none = VarMask::none(&p);
        assert_eq!(none.len(), 3); // a, b, t (y excluded)
        assert_eq!(none.count_selected(), 0);
        assert!(!none.is_all_selected());

        let all = VarMask::all(&p);
        assert_eq!(all.count_selected(), 3);
        assert!(all.is_all_selected());
    }

    #[test]
    fn set_toggle_roundtrip() {
        let p = prog();
        let mut m = VarMask::none(&p);
        assert!(m.toggle(1));
        assert!(m.is_selected(1));
        assert!(!m.toggle(1));
        assert!(!m.is_selected(1));
        m.set(2, true);
        m.set(2, true); // idempotent
        assert_eq!(m.count_selected(), 1);
    }

    #[test]
    fn selected_vars_map_to_ids() {
        let p = prog();
        let mut m = VarMask::none(&p);
        m.set(0, true); // a
        m.set(2, true); // t
        let sel = m.selected_vars();
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&p.var_by_name("a").unwrap()));
        assert!(sel.contains(&p.var_by_name("t").unwrap()));
    }

    #[test]
    fn raw_bits_roundtrip() {
        let p = prog();
        let mut m = VarMask::none(&p);
        m.set(0, true);
        m.set(2, true);
        let restored = VarMask::with_bits(&p, m.raw_bits());
        assert_eq!(m, restored);
    }

    #[test]
    #[should_panic(expected = "exceed mask length")]
    fn with_bits_rejects_overflow() {
        let p = prog();
        VarMask::with_bits(&p, 0b1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        let p = prog();
        VarMask::none(&p).set(3, true);
    }

    #[test]
    fn flags_follow_touched_variables() {
        let p = prog();
        // Select only `a`: the mul touches a -> approx; the add does not.
        let mut m = VarMask::none(&p);
        m.set(0, true);
        assert_eq!(instruction_flags(&p, &m), vec![true, false, false]);

        // Select only `t`: both arithmetic instructions touch t.
        let mut m = VarMask::none(&p);
        m.set(2, true);
        assert_eq!(instruction_flags(&p, &m), vec![true, true, false]);

        // Empty selection: nothing approximate.
        assert_eq!(instruction_flags(&p, &VarMask::none(&p)), vec![false; 3]);
    }

    #[test]
    fn copies_never_flagged() {
        let p = prog();
        let flags = instruction_flags(&p, &VarMask::all(&p));
        assert!(
            !flags[2],
            "copy must stay precise even with all vars selected"
        );
    }

    #[test]
    fn display_is_bit_string() {
        let p = prog();
        let mut m = VarMask::none(&p);
        m.set(0, true);
        assert_eq!(m.to_string(), "100");
    }
}
