//! Reproduction harness: one function per paper table/figure plus the
//! ablation studies; the `repro` binary is a thin CLI over these.
//!
//! Each function prints a paper-style ASCII table to stdout and, when given
//! an output directory, writes the raw series as CSV so the figures can be
//! replotted. The functions return their structured results so integration
//! tests can assert on the reproduced shapes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;
pub mod tables;

use std::path::PathBuf;

/// Where CSV artefacts are written (`None` = stdout only).
#[derive(Debug, Clone, Default)]
pub struct OutputDir(pub Option<PathBuf>);

impl OutputDir {
    /// An output directory rooted at `path`.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self(Some(path.into()))
    }

    /// Writes `rows` as `<name>.csv` if a directory is configured.
    pub fn write(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        if let Some(dir) = &self.0 {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = ax_dse::report::write_csv(&path, headers, rows) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  wrote {}", path.display());
            }
        }
    }
}
