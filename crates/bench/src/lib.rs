//! Reproduction harness: one function per paper table/figure plus the
//! ablation studies; the `repro` binary is a thin CLI over these.
//!
//! Each function prints a paper-style ASCII table to stdout and, when given
//! an output directory, writes the raw series as CSV so the figures can be
//! replotted. The functions return their structured results so integration
//! tests can assert on the reproduced shapes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;
pub mod tables;

use ax_dse::backend::EvalContext;
use ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use ax_operators::OperatorLibrary;
use ax_workloads::Workload;
use std::path::PathBuf;
use std::sync::Arc;

/// One exploration through the campaign layer's single-run primitive —
/// the harness-internal replacement for the deprecated `explore_qlearning`
/// / `explore_with_agent` free functions.
pub(crate) fn explore_one(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
    kind: AgentKind,
) -> ExplorationOutcome {
    let ctx = EvalContext::new(workload, Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark must prepare");
    ax_dse::campaign::explore(&ctx, opts, kind)
}

/// Appends one benchmark record to a `BENCH_*.json` perf-trajectory file.
///
/// The file holds a JSON array of run records (newest last); a legacy
/// single-object file is wrapped into an array first, a missing or
/// unreadable file starts a fresh one. This is how each PR's cold/warm and
/// surrogate numbers accumulate instead of overwriting history.
///
/// # Errors
///
/// Propagates filesystem errors. A present-but-unparseable file is an
/// error ([`std::io::ErrorKind::InvalidData`]), **not** a fresh start —
/// the file is accumulated history, and overwriting it on a corrupt read
/// would silently destroy every prior record.
pub fn append_bench_record(
    path: impl AsRef<std::path::Path>,
    record: ax_dse::json::Json,
) -> std::io::Result<()> {
    use ax_dse::json::Json;
    let path = path.as_ref();
    let mut records = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Arr(items)) => items,
            Ok(obj @ Json::Obj(_)) => vec![obj],
            Ok(other) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} holds {other:?}, not a record array", path.display()),
                ))
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("refusing to overwrite unparseable {}: {e}", path.display()),
                ))
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    records.push(record);
    std::fs::write(path, Json::Arr(records).pretty())
}

/// Where CSV artefacts are written (`None` = stdout only).
#[derive(Debug, Clone, Default)]
pub struct OutputDir(pub Option<PathBuf>);

impl OutputDir {
    /// An output directory rooted at `path`.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self(Some(path.into()))
    }

    /// Writes `rows` as `<name>.csv` if a directory is configured.
    pub fn write(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        if let Some(dir) = &self.0 {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = ax_dse::report::write_csv(&path, headers, rows) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  wrote {}", path.display());
            }
        }
    }
}
