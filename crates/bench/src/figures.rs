//! Figures 2, 3 and 4 of the paper.
//!
//! The paper's figures are scatter plots over exploration steps; here the
//! same data is produced as CSV series plus printed summaries (trend-line
//! slopes, bin means) whose *shape* is what the reproduction checks: the
//! MatMul exploration trends towards improvement while FIR is noisier.

use crate::OutputDir;
use ax_dse::analysis::{linear_trend, reward_curve, FigureSeries};
use ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use ax_dse::report::{ascii_chart, ascii_table};
use ax_operators::OperatorLibrary;
use ax_workloads::fir::Fir;
use ax_workloads::matmul::MatMul;
use ax_workloads::Workload;

/// The per-step series and trend lines of one exploration figure.
#[derive(Debug)]
pub struct FigureResult {
    /// The benchmark explored.
    pub benchmark: String,
    /// The raw step series.
    pub series: FigureSeries,
    /// `(slope, intercept)` of power, time and accuracy trend lines.
    pub trends: [(f64, f64); 3],
    /// The underlying exploration.
    pub outcome: ExplorationOutcome,
}

fn figure(
    workload: &dyn Workload,
    opts: &ExploreOptions,
    name: &str,
    out: &OutputDir,
) -> FigureResult {
    let lib = OperatorLibrary::evoapprox();
    let outcome = crate::explore_one(workload, &lib, opts, AgentKind::QLearning);
    let series = outcome.figure_series();
    let trends = series.trends();

    let headers = ["step", "delta_power_mw", "delta_time_ns", "delta_acc"];
    let rows: Vec<Vec<String>> = (0..series.power.len())
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.4}", series.power[i]),
                format!("{:.4}", series.time[i]),
                format!("{:.4}", series.accuracy[i]),
            ]
        })
        .collect();
    out.write(name, &headers, &rows);

    let trend_rows = vec![
        vec![
            "power".into(),
            format!("{:.6}", trends[0].0),
            format!("{:.3}", trends[0].1),
        ],
        vec![
            "comp. time".into(),
            format!("{:.6}", trends[1].0),
            format!("{:.3}", trends[1].1),
        ],
        vec![
            "accuracy".into(),
            format!("{:.6}", trends[2].0),
            format!("{:.3}", trends[2].1),
        ],
    ];
    println!(
        "\n{name}: exploration outcome evolution for {} ({} steps)",
        workload.name(),
        series.power.len()
    );
    println!(
        "{}",
        ascii_table(&["series", "trend slope / step", "intercept"], &trend_rows)
    );
    println!("d-power over steps:");
    println!("{}", ascii_chart(&series.power, 72, 10));
    println!("accuracy degradation over steps:");
    println!("{}", ascii_chart(&series.accuracy, 72, 10));

    FigureResult {
        benchmark: workload.name(),
        series,
        trends,
        outcome,
    }
}

/// Figure 2: exploration outcome evolution for Matrix Multiplication 10×10.
pub fn fig2(opts: &ExploreOptions, out: &OutputDir) -> FigureResult {
    figure(&MatMul::new(10), opts, "fig2_matmul10", out)
}

/// Figure 3: exploration outcome evolution for FIR with 100 samples.
pub fn fig3(opts: &ExploreOptions, out: &OutputDir) -> FigureResult {
    figure(&Fir::new(100), opts, "fig3_fir100", out)
}

/// The Figure 4 data: mean reward per 100-step bin for both benchmarks.
#[derive(Debug)]
pub struct Fig4Result {
    /// MatMul 10×10 bin means.
    pub matmul_bins: Vec<f64>,
    /// FIR-100 bin means.
    pub fir_bins: Vec<f64>,
}

/// Figure 4: average reward evolution (per 100 steps) for MatMul 10×10 and
/// FIR-100.
pub fn fig4(opts: &ExploreOptions, out: &OutputDir) -> Fig4Result {
    let lib = OperatorLibrary::evoapprox();
    let matmul = crate::explore_one(&MatMul::new(10), &lib, opts, AgentKind::QLearning);
    let fir = crate::explore_one(&Fir::new(100), &lib, opts, AgentKind::QLearning);
    let matmul_bins = reward_curve(&matmul.trace, 100);
    let fir_bins = reward_curve(&fir.trace, 100);

    let headers = [
        "bin (x100 steps)",
        "matmul-10x10 avg reward",
        "fir-100 avg reward",
    ];
    let n = matmul_bins.len().max(fir_bins.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let cell = |v: Option<&f64>| v.map_or(String::new(), |x| format!("{x:.3}"));
            vec![
                i.to_string(),
                cell(matmul_bins.get(i)),
                cell(fir_bins.get(i)),
            ]
        })
        .collect();
    println!("\nFigure 4: average reward evolution (100-step bins)");
    println!("{}", ascii_table(&headers, &rows));
    out.write("fig4_reward_bins", &headers, &rows);

    println!("matmul-10x10 mean reward per 100 steps:");
    println!("{}", ascii_chart(&matmul_bins, 72, 8));
    println!("fir-100 mean reward per 100 steps:");
    println!("{}", ascii_chart(&fir_bins, 72, 8));

    // Headline shape: the MatMul reward trend should rise (the agent learns).
    let (mm_slope, _) = linear_trend(&matmul_bins);
    let (fir_slope, _) = linear_trend(&fir_bins);
    println!("matmul reward-bin trend slope: {mm_slope:.4}; fir: {fir_slope:.4}");
    Fig4Result {
        matmul_bins,
        fir_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExploreOptions {
        ExploreOptions {
            max_steps: 300,
            ..Default::default()
        }
    }

    #[test]
    fn fig2_produces_full_series_and_finite_trends() {
        let r = fig2(&quick(), &OutputDir::default());
        assert_eq!(r.series.power.len(), r.outcome.trace.len());
        for (slope, intercept) in r.trends {
            assert!(slope.is_finite() && intercept.is_finite());
        }
    }

    #[test]
    fn fig4_bins_cover_run_length() {
        // Explorations may stop before the 300-step cap (terminate flag or
        // cumulative-reward target), so the bin count is 1..=3.
        let r = fig4(&quick(), &OutputDir::default());
        assert!(
            (1..=3).contains(&r.matmul_bins.len()),
            "{:?}",
            r.matmul_bins
        );
        assert!(!r.fir_bins.is_empty());
        for b in r.matmul_bins.iter().chain(&r.fir_bins) {
            assert!(b.is_finite());
        }
    }
}
