//! Tables I, II and III of the paper.

use crate::OutputDir;
use ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use ax_dse::report::{ascii_table, fmt_metric};
use ax_operators::{
    characterize_adder, characterize_multiplier, BitWidth, CharacterizeMode, OperatorLibrary,
};
use ax_workloads::paper_benchmarks;

/// One row of the operator characterisation tables: published vs measured.
#[derive(Debug, Clone)]
pub struct OperatorRow {
    /// Operator short name.
    pub name: String,
    /// Operand width.
    pub width: BitWidth,
    /// Published MRED (%), from the paper's table.
    pub published_mred: f64,
    /// MRED (%) measured on our behavioural model.
    pub measured_mred: f64,
    /// Published power (mW).
    pub power_mw: f64,
    /// Published computation time (ns).
    pub time_ns: f64,
}

fn adder_mode(w: BitWidth) -> CharacterizeMode {
    match w {
        BitWidth::W8 => CharacterizeMode::Exhaustive,
        _ => CharacterizeMode::MonteCarlo {
            samples: 1_000_000,
            seed: 0xA11CE,
        },
    }
}

/// Reproduces Table I: the selected adders with MRED / power / time,
/// measured MRED alongside.
pub fn table1(out: &OutputDir) -> Vec<OperatorRow> {
    let lib = OperatorLibrary::evoapprox();
    let mut rows = Vec::new();
    for width in [BitWidth::W8, BitWidth::W16] {
        for e in lib.adders(width) {
            let profile = characterize_adder(&e.model, adder_mode(width));
            rows.push(OperatorRow {
                name: e.spec.name().to_owned(),
                width,
                published_mred: e.spec.mred_pct(),
                measured_mred: profile.mred_pct,
                power_mw: e.spec.power_mw(),
                time_ns: e.spec.time_ns(),
            });
        }
    }
    print_operator_table("Table I: selected adders", "table1_adders", &rows, out);
    rows
}

/// Reproduces Table II: the selected multipliers.
pub fn table2(out: &OutputDir) -> Vec<OperatorRow> {
    let lib = OperatorLibrary::evoapprox();
    let mut rows = Vec::new();
    for width in [BitWidth::W8, BitWidth::W32] {
        let mode = match width {
            BitWidth::W8 => CharacterizeMode::Exhaustive,
            _ => CharacterizeMode::MonteCarlo {
                samples: 1_000_000,
                seed: 0xA11CE,
            },
        };
        for e in lib.multipliers(width) {
            let profile = characterize_multiplier(&e.model, mode);
            rows.push(OperatorRow {
                name: e.spec.name().to_owned(),
                width,
                published_mred: e.spec.mred_pct(),
                measured_mred: profile.mred_pct,
                power_mw: e.spec.power_mw(),
                time_ns: e.spec.time_ns(),
            });
        }
    }
    print_operator_table(
        "Table II: selected multipliers",
        "table2_multipliers",
        &rows,
        out,
    );
    rows
}

fn print_operator_table(title: &str, file: &str, rows: &[OperatorRow], out: &OutputDir) {
    let headers = [
        "operator",
        "type",
        "MRED % (paper)",
        "MRED % (measured)",
        "power mW",
        "time ns",
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!(
                    "{} {}",
                    r.width,
                    if r.name.contains("precise") {
                        "precise"
                    } else {
                        ""
                    }
                )
                .trim()
                .to_owned(),
                r.name.clone(),
                format!("{:.3}", r.published_mred),
                format!("{:.3}", r.measured_mred),
                format!("{}", r.power_mw),
                format!("{}", r.time_ns),
            ]
        })
        .collect();
    println!("\n{title}");
    println!("{}", ascii_table(&headers, &table_rows));
    out.write(file, &headers, &table_rows);
}

/// Reproduces Table III: the four explorations with min/solution/max of
/// ΔPower, ΔTime and accuracy degradation plus the selected operator types.
pub fn table3(opts: &ExploreOptions, out: &OutputDir) -> Vec<ExplorationOutcome> {
    let lib = OperatorLibrary::evoapprox();
    let mut outcomes = Vec::new();
    for wl in paper_benchmarks() {
        println!("exploring {} ...", wl.name());
        let outcome = crate::explore_one(wl.as_ref(), &lib, opts, AgentKind::QLearning);
        outcomes.push(outcome);
    }

    let headers: Vec<&str> = {
        let mut h = vec!["metric"];
        h.extend(outcomes.iter().map(|o| o.summary.benchmark.as_str()));
        h
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    type MetricFn = fn(&ExplorationOutcome) -> f64;
    let metric_rows: [(&str, MetricFn); 9] = [
        ("d-power min (mW)", |o| o.summary.power.min),
        ("d-power solution", |o| o.summary.power.solution),
        ("d-power max", |o| o.summary.power.max),
        ("d-time min (ns)", |o| o.summary.time.min),
        ("d-time solution", |o| o.summary.time.solution),
        ("d-time max", |o| o.summary.time.max),
        ("acc-degr min", |o| o.summary.accuracy.min),
        ("acc-degr solution", |o| o.summary.accuracy.solution),
        ("acc-degr max", |o| o.summary.accuracy.max),
    ];
    for (label, f) in metric_rows {
        let mut row = vec![label.to_owned()];
        row.extend(outcomes.iter().map(|o| fmt_metric(f(o))));
        rows.push(row);
    }
    for (label, f) in [
        (
            "adder type",
            (|o: &ExplorationOutcome| o.summary.adder_name.clone())
                as fn(&ExplorationOutcome) -> String,
        ),
        ("multiplier type", |o| o.summary.mul_name.clone()),
        ("steps", |o| o.summary.steps.to_string()),
        ("distinct configs", |o| o.distinct_configs.to_string()),
    ] {
        let mut row = vec![label.to_owned()];
        row.extend(outcomes.iter().map(f));
        rows.push(row);
    }

    println!("\nTable III: exploration results for power, computation time, and accuracy");
    println!("{}", ascii_table(&headers, &rows));
    out.write("table3_explorations", &headers, &rows);
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_all_adders_in_order() {
        let rows = table1(&OutputDir::default());
        assert_eq!(rows.len(), 12);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "1HG", "6PT", "6R6", "0TP", "00M", "02Y", "1A5", "0GN", "0BC", "0HE", "0SL", "067"
            ]
        );
        // Measured MRED tracks the published ladder within each width class.
        for class in rows.chunks(6) {
            for pair in class.windows(2) {
                assert!(pair[0].measured_mred <= pair[1].measured_mred + 1e-9);
            }
        }
    }

    #[test]
    fn table2_rows_cover_all_multipliers() {
        let rows = table2(&OutputDir::default());
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].name, "1JJQ");
        assert_eq!(rows[6].name, "precise");
        assert_eq!(rows[11].name, "067");
    }
}
