//! Emits `BENCH_surrogate.json`: surrogate-assisted vs. pure-exact sweep
//! wall-clock, tier usage, and the model's confirmed prediction error.
//!
//! ```text
//! bench_surrogate [--out FILE] [--seeds N] [--steps N] [--reps N] [--smoke]
//! ```
//!
//! Both sides run cold: the exact baseline is the same rayon fan-out
//! `bench_sweep` measures (fresh shared cache per rep); the surrogate
//! side is `sweep_seeds_surrogate` with a fresh cache *and* a fresh
//! model per rep, so the learning cost is inside the measurement. The
//! reported `rel_err_*` numbers are the audit stream's verdict: mean
//! relative prediction error on designs confirmed exactly while the
//! trust gate was open. `--smoke` shrinks everything for CI.

use ax_dse::evaluator::{EvalContext, SharedCache};
use ax_dse::explore::{explore_in_context, AgentKind, ExploreOptions};
use ax_operators::OperatorLibrary;
use ax_surrogate::{sweep_seeds_surrogate, SurrogateSettings, SurrogateSweepOutcome};
use ax_workloads::matmul::MatMul;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    seeds: u64,
    steps: u64,
    reps: u32,
}

fn parse() -> Result<Config, String> {
    let mut cfg = Config {
        out: "BENCH_surrogate.json".into(),
        seeds: 8,
        steps: 300,
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => cfg.out = take("--out")?,
            "--seeds" => {
                cfg.seeds = take("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--steps" => {
                cfg.steps = take("--steps")?
                    .parse()
                    .map_err(|e| format!("bad --steps: {e}"))?;
            }
            "--reps" => {
                cfg.reps = take("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--smoke" => {
                cfg.seeds = 2;
                cfg.steps = 80;
                cfg.reps = 1;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_surrogate [--out FILE] [--seeds N] [--steps N] [--reps N] [--smoke]"
            );
            std::process::exit(1);
        }
    };

    let lib = OperatorLibrary::evoapprox();
    let wl = MatMul::new(10);
    let opts = |seed| ExploreOptions {
        max_steps: cfg.steps,
        seed,
        ..Default::default()
    };

    // Exact baseline: the production sweep fan-out, cold cache per rep.
    let mut exact_ms = f64::INFINITY;
    let mut benchmark = String::new();
    for _ in 0..cfg.reps.max(1) {
        let ctx = EvalContext::with_cache(
            &wl,
            Arc::new(lib.clone()),
            opts(0).input_seed,
            SharedCache::new(),
        )
        .expect("context");
        let t = Instant::now();
        (0..cfg.seeds).into_par_iter().for_each(|seed| {
            explore_in_context(&ctx, &opts(seed), AgentKind::QLearning).expect("exact sweep");
        });
        exact_ms = exact_ms.min(t.elapsed().as_secs_f64() * 1e3);
        benchmark = ctx.benchmark().to_owned();
    }

    // Surrogate-assisted sweep: fresh cache and fresh model per rep — the
    // whole two-tier lifecycle (warmup, gating, audits) is measured.
    let settings = SurrogateSettings::default();
    let mut surrogate_ms = f64::INFINITY;
    let mut outcome: Option<SurrogateSweepOutcome> = None;
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        let o = sweep_seeds_surrogate(
            &wl,
            &lib,
            &opts(0),
            AgentKind::QLearning,
            cfg.seeds,
            settings,
        )
        .expect("surrogate sweep");
        surrogate_ms = surrogate_ms.min(t.elapsed().as_secs_f64() * 1e3);
        outcome = Some(o);
    }
    let outcome = outcome.expect("at least one rep");

    let stats = outcome.stats;
    let rel = outcome.rel_errors;
    let fmt_err = |v: Option<f64>| match v {
        Some(v) => format!("{v:.5}"),
        None => "null".into(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"seeds\": {},\n  \"max_steps\": {},\n  \
         \"threads\": {},\n  \"exact_cold_ms\": {:.3},\n  \"surrogate_ms\": {:.3},\n  \
         \"speedup\": {:.2},\n  \"class_hits\": {},\n  \"surrogate_answers\": {},\n  \
         \"exact_confirmations\": {},\n  \"surrogate_hit_rate\": {:.4},\n  \
         \"avoided_exact_rate\": {:.4},\n  \"rel_err_power\": {},\n  \
         \"rel_err_time\": {},\n  \"rel_err_acc\": {},\n  \"audited_designs\": {},\n  \
         \"training_samples\": {}\n}}\n",
        benchmark,
        cfg.seeds,
        cfg.steps,
        rayon::current_num_threads(),
        exact_ms,
        surrogate_ms,
        exact_ms / surrogate_ms,
        stats.class_hits,
        stats.surrogate_answers,
        stats.exact_confirmations,
        stats.surrogate_hit_rate(),
        stats.avoided_exact_rate(),
        fmt_err(rel.map(|e| e[0])),
        fmt_err(rel.map(|e| e[1])),
        fmt_err(rel.map(|e| e[2])),
        outcome.shadow_confirmations,
        outcome.training_samples,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_surrogate.json");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}
