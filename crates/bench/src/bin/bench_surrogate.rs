//! Appends to `BENCH_surrogate.json`: surrogate-assisted vs. pure-exact
//! sweep wall-clock, tier usage, and the model's confirmed prediction
//! error.
//!
//! ```text
//! bench_surrogate [--out FILE] [--seeds N] [--steps N] [--reps N] [--smoke]
//!                 [--spec FILE] [--emit-spec FILE]
//! ```
//!
//! Both sides run cold: the exact baseline is the same rayon fan-out
//! `bench_sweep` measures (fresh shared cache per rep); the surrogate
//! side is a tiered sweep with a fresh cache *and* a fresh model per rep,
//! so the learning cost is inside the measurement. The reported
//! `rel_err_*` numbers are the audit stream's verdict: mean relative
//! prediction error on designs confirmed exactly while the trust gate was
//! open. `--smoke` shrinks everything for CI. Each run *appends* its
//! record to the JSON file; `--spec`/`--emit-spec` exchange campaign
//! [`ExperimentSpec`] files with `repro run`.

use ax_bench::append_bench_record;
use ax_dse::campaign::{BackendSpec, BenchmarkSpec, ExperimentSpec, SeedRange};
use ax_dse::evaluator::{EvalContext, SharedCache};
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::json::Json;
use ax_surrogate::{sweep_in_context_surrogate, SurrogateSettings, SurrogateSweepOutcome};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One tier's share of every answered query, as a JSON number.
fn tier_mix(tier: u64, stats: &ax_dse::campaign::TieredStats) -> Json {
    let total =
        stats.memo_hits + stats.class_hits + stats.surrogate_answers + stats.exact_confirmations;
    Json::Num(format!("{:.4}", tier as f64 / total.max(1) as f64))
}

struct Config {
    out: String,
    seeds: Option<u64>,
    steps: Option<u64>,
    reps: Option<u32>,
    smoke: bool,
    spec: Option<String>,
    emit_spec: Option<String>,
}

fn parse() -> Result<Config, String> {
    let mut cfg = Config {
        out: "BENCH_surrogate.json".into(),
        seeds: None,
        steps: None,
        reps: None,
        smoke: false,
        spec: None,
        emit_spec: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => cfg.out = take("--out")?,
            "--seeds" => {
                cfg.seeds = Some(
                    take("--seeds")?
                        .parse()
                        .map_err(|e| format!("bad --seeds: {e}"))?,
                );
            }
            "--steps" => {
                cfg.steps = Some(
                    take("--steps")?
                        .parse()
                        .map_err(|e| format!("bad --steps: {e}"))?,
                );
            }
            "--reps" => {
                cfg.reps = Some(
                    take("--reps")?
                        .parse()
                        .map_err(|e| format!("bad --reps: {e}"))?,
                );
            }
            "--smoke" => cfg.smoke = true,
            "--spec" => cfg.spec = Some(take("--spec")?),
            "--emit-spec" => cfg.emit_spec = Some(take("--emit-spec")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_surrogate [--out FILE] [--seeds N] [--steps N] [--reps N] \
                 [--smoke] [--spec FILE] [--emit-spec FILE]"
            );
            std::process::exit(1);
        }
    };

    // Precedence: explicit flags beat the spec, the spec beats the
    // built-in defaults, and `--smoke` clamps whatever won so a CI smoke
    // run stays a smoke run even against a full-size spec.
    let mut bench_spec = BenchmarkSpec::MatMul(10);
    let mut settings = SurrogateSettings::default();
    let (mut spec_seeds, mut spec_steps) = (None, None);
    if let Some(path) = &cfg.spec {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let spec = ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        bench_spec = spec.benchmarks[0];
        spec_seeds = Some(spec.seeds.count);
        spec_steps = Some(spec.explore.max_steps);
        if let BackendSpec::Tiered(s) = spec.backend {
            settings = s;
        }
    }
    let mut seeds = cfg.seeds.or(spec_seeds).unwrap_or(8);
    let mut steps = cfg.steps.or(spec_steps).unwrap_or(300);
    let mut reps = cfg.reps.unwrap_or(3);
    if cfg.smoke {
        seeds = seeds.min(2);
        steps = steps.min(80);
        reps = reps.min(1);
    }
    let wl = bench_spec.build();

    let lib = ax_operators::OperatorLibrary::evoapprox();
    let opts = |seed| ExploreOptions {
        max_steps: steps,
        seed,
        ..Default::default()
    };

    if let Some(path) = &cfg.emit_spec {
        let spec = ExperimentSpec::new("bench-surrogate")
            .benchmark(bench_spec)
            .agent(AgentKind::QLearning)
            .seeds(SeedRange::new(0, seeds))
            .explore(opts(0))
            .backend(BackendSpec::Tiered(settings));
        std::fs::write(path, spec.to_json_string()).expect("write spec");
        eprintln!("wrote {path}");
    }

    let fresh_ctx = || {
        EvalContext::with_cache(
            wl.as_ref(),
            Arc::new(lib.clone()),
            opts(0).input_seed,
            SharedCache::new(),
        )
        .expect("context")
    };

    // Exact baseline: the production sweep fan-out, cold cache per rep.
    let mut exact_ms = f64::INFINITY;
    let mut benchmark = String::new();
    for _ in 0..reps.max(1) {
        let ctx = fresh_ctx();
        let t = Instant::now();
        (0..seeds).into_par_iter().for_each(|seed| {
            ax_dse::campaign::explore(&ctx, &opts(seed), AgentKind::QLearning);
        });
        exact_ms = exact_ms.min(t.elapsed().as_secs_f64() * 1e3);
        benchmark = ctx.benchmark().to_owned();
    }

    // Surrogate-assisted sweep: fresh cache and fresh model per rep — the
    // whole two-tier lifecycle (warmup, gating, audits) is measured.
    let mut surrogate_ms = f64::INFINITY;
    let mut outcome: Option<SurrogateSweepOutcome> = None;
    for _ in 0..reps.max(1) {
        let ctx = fresh_ctx();
        let t = Instant::now();
        let o = sweep_in_context_surrogate(&ctx, &opts(0), AgentKind::QLearning, seeds, settings);
        surrogate_ms = surrogate_ms.min(t.elapsed().as_secs_f64() * 1e3);
        outcome = Some(o);
    }
    let outcome = outcome.expect("at least one rep");

    let stats = outcome.stats;
    let rel = outcome.rel_errors;
    let err_node = |v: Option<f64>| match v {
        Some(v) => Json::Num(format!("{v:.5}")),
        None => Json::Null,
    };
    let record = Json::obj(vec![
        ("benchmark", Json::str(benchmark)),
        ("seeds", Json::u64(seeds)),
        ("max_steps", Json::u64(steps)),
        ("threads", Json::u64(rayon::current_num_threads() as u64)),
        ("exact_cold_ms", Json::Num(format!("{exact_ms:.3}"))),
        ("surrogate_ms", Json::Num(format!("{surrogate_ms:.3}"))),
        (
            "speedup",
            Json::Num(format!("{:.2}", exact_ms / surrogate_ms)),
        ),
        ("memo_hits", Json::u64(stats.memo_hits)),
        ("class_hits", Json::u64(stats.class_hits)),
        ("surrogate_answers", Json::u64(stats.surrogate_answers)),
        ("exact_confirmations", Json::u64(stats.exact_confirmations)),
        // Tier mix: the fraction of all answered queries each tier served
        // (memo, execution-equivalence class, model, exact confirm).
        ("tier_mix_memo", tier_mix(stats.memo_hits, &stats)),
        ("tier_mix_class", tier_mix(stats.class_hits, &stats)),
        (
            "tier_mix_surrogate",
            tier_mix(stats.surrogate_answers, &stats),
        ),
        (
            "tier_mix_exact",
            tier_mix(stats.exact_confirmations, &stats),
        ),
        (
            "surrogate_hit_rate",
            Json::Num(format!("{:.4}", stats.surrogate_hit_rate())),
        ),
        (
            "avoided_exact_rate",
            Json::Num(format!("{:.4}", stats.avoided_exact_rate())),
        ),
        ("rel_err_power", err_node(rel.map(|e| e[0]))),
        ("rel_err_time", err_node(rel.map(|e| e[1]))),
        ("rel_err_acc", err_node(rel.map(|e| e[2]))),
        ("audited_designs", Json::u64(outcome.shadow_confirmations)),
        ("training_samples", Json::u64(outcome.training_samples)),
    ]);
    print!("{}", record.pretty());
    append_bench_record(&cfg.out, record).expect("append BENCH_surrogate.json");
    eprintln!("appended to {}", cfg.out);
}
