//! Regenerates every table and figure of the paper plus the ablations.
//!
//! ```text
//! repro [--out DIR] [--steps N] [--seed S] <command>
//!
//! commands:
//!   table1                adder characterisation (paper Table I)
//!   table2                multiplier characterisation (paper Table II)
//!   table3                the four explorations (paper Table III)
//!   fig2                  MatMul 10x10 step series + trends (paper Fig. 2)
//!   fig3                  FIR-100 step series + trends (paper Fig. 3)
//!   fig4                  average reward per 100 steps (paper Fig. 4)
//!   ablation-explorers    Q-learning vs random/hill-climb/SA/GA
//!   ablation-agents       Q-learning vs SARSA/Expected-SARSA/DoubleQ/Q(lambda)
//!   ablation-epsilon      epsilon-schedule sensitivity
//!   ablation-thresholds   threshold-rule sensitivity
//!   sweep                 multi-seed robustness of the explorations (rayon + shared cache)
//!   portfolio             race every agent kind per benchmark over one shared cache
//!   surrogate             two-tier (surrogate prefilter + exact confirm) vs pure-exact sweep
//!   serve                 long-lived campaign daemon: POST specs to
//!                         /campaigns over HTTP, GET byte-identical reports
//!                         back (--addr HOST:PORT binds elsewhere; --workers N
//!                         sets concurrent job slots; --cache FILE persists the
//!                         shared design cache; --server-budget N caps
//!                         evaluations across ALL jobs; --max-job-budget N
//!                         clamps each job; --cache-scopes N prunes the oldest
//!                         cache scopes past N; --reuse-models shares trained
//!                         surrogates across jobs, trading report
//!                         byte-reproducibility for throughput; --smoke
//!                         shrinks every submitted spec for CI)
//!   run SPEC.json         execute a checked-in campaign spec end-to-end
//!                         (--smoke shrinks it for CI; --cache FILE persists the
//!                         design cache across processes — concurrent writers
//!                         merge on save; --cache-cap N bounds the cache and its
//!                         file; --policy P / --budget N override the spec's
//!                         budget policy: uniform | weighted:S1,S2,… |
//!                         halving:ROUNDS,KEEP | asha:RUNGS,KEEP |
//!                         hyperband:R1,K1;R2,K2;… — --report-json FILE
//!                         writes the machine-readable CampaignReport;
//!                         --front-json FILE writes the report's Pareto
//!                         section (front membership, hypervolume,
//!                         per-objective bests) and fails on an empty
//!                         front; --trace FILE streams structured events
//!                         as JSONL and --metrics FILE writes the final
//!                         metrics snapshot as JSON)
//!   all                   everything above
//! ```

use ax_bench::{ablations, figures, tables, OutputDir};
use ax_dse::backend::SharedCache;
use ax_dse::campaign::{
    BudgetPolicy, Campaign, CampaignReport, ExperimentSpec, JsonlSink, Observer, SeedRange,
    Telemetry, TieredStats,
};
use ax_dse::explore::AgentKind;
use ax_dse::explore::ExploreOptions;
use ax_dse::report::ascii_table;
use ax_operators::OperatorLibrary;
use ax_surrogate::{run_spec_traced, sweep_in_context_surrogate, SurrogateSettings};
use ax_workloads::fir::Fir;
use ax_workloads::matmul::MatMul;
use ax_workloads::sobel::Sobel;
use ax_workloads::Workload;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    spec: Option<String>,
    out: OutputDir,
    steps: u64,
    seed: u64,
    reward: f64,
    smoke: bool,
    cache: Option<String>,
    cache_cap: Option<usize>,
    policy: Option<BudgetPolicy>,
    budget: Option<u64>,
    report_json: Option<String>,
    front_json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    addr: String,
    workers: usize,
    server_budget: Option<u64>,
    max_job_budget: Option<u64>,
    cache_scopes: Option<usize>,
    reuse_models: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut out = OutputDir::at("results");
    let mut steps = 10_000u64;
    let mut seed = 0u64;
    let mut reward = ExploreOptions::default().max_reward;
    let mut smoke = false;
    let mut cache = None;
    let mut cache_cap = None;
    let mut policy = None;
    let mut budget = None;
    let mut report_json = None;
    let mut front_json = None;
    let mut trace = None;
    let mut metrics = None;
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut workers = 2usize;
    let mut server_budget = None;
    let mut max_job_budget = None;
    let mut cache_scopes = None;
    let mut reuse_models = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                out = OutputDir::at(dir);
            }
            "--no-out" => out = OutputDir::default(),
            "--steps" => {
                steps = it
                    .next()
                    .ok_or("--steps needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --steps: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--reward" => {
                reward = it
                    .next()
                    .ok_or("--reward needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --reward: {e}"))?;
            }
            "--smoke" => smoke = true,
            "--cache" => cache = Some(it.next().ok_or("--cache needs a file")?),
            "--cache-cap" => {
                cache_cap = Some(
                    it.next()
                        .ok_or("--cache-cap needs an entry count")?
                        .parse()
                        .map_err(|e| format!("bad --cache-cap: {e}"))?,
                );
            }
            "--policy" => {
                policy = Some(BudgetPolicy::parse_cli(
                    &it.next().ok_or("--policy needs a value")?,
                )?);
            }
            "--budget" => {
                budget = Some(
                    it.next()
                        .ok_or("--budget needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--report-json" => {
                report_json = Some(it.next().ok_or("--report-json needs a file")?);
            }
            "--front-json" => {
                front_json = Some(it.next().ok_or("--front-json needs a file")?);
            }
            "--trace" => trace = Some(it.next().ok_or("--trace needs a file")?),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a file")?),
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--server-budget" => {
                server_budget = Some(
                    it.next()
                        .ok_or("--server-budget needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --server-budget: {e}"))?,
                );
            }
            "--max-job-budget" => {
                max_job_budget = Some(
                    it.next()
                        .ok_or("--max-job-budget needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --max-job-budget: {e}"))?,
                );
            }
            "--cache-scopes" => {
                cache_scopes = Some(
                    it.next()
                        .ok_or("--cache-scopes needs a scope count")?
                        .parse()
                        .map_err(|e| format!("bad --cache-scopes: {e}"))?,
                );
            }
            "--reuse-models" => reuse_models = true,
            "--help" | "-h" => return Err("help".into()),
            // Only `run` takes a second positional (its spec file); a stray
            // bare word after any other command is a mistake, not a spec.
            other
                if !other.starts_with('-')
                    && (positional.is_empty()
                        || positional[0] == "run" && positional.len() == 1) =>
            {
                positional.push(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let mut positional = positional.into_iter();
    let command = positional.next().ok_or("missing command")?;
    let spec = positional.next();
    if command == "run" && spec.is_none() {
        return Err("`run` needs a spec file: repro run <spec.json>".into());
    }
    Ok(Args {
        command,
        spec,
        out,
        steps,
        seed,
        reward,
        smoke,
        cache,
        cache_cap,
        policy,
        budget,
        report_json,
        front_json,
        trace,
        metrics,
        addr,
        workers,
        server_budget,
        max_job_budget,
        cache_scopes,
        reuse_models,
    })
}

/// Streams campaign progress to stderr as runs finish.
struct PrintObserver;

impl Observer for PrintObserver {
    fn on_campaign_start(&self, name: &str, total_runs: u64) {
        eprintln!("campaign `{name}`: {total_runs} runs");
    }

    fn on_benchmark_ready(&self, benchmark: &str) {
        eprintln!("  prepared {benchmark}");
    }

    fn on_run_complete(
        &self,
        benchmark: &str,
        agent: AgentKind,
        seed: u64,
        stop: ax_agents::train::StopReason,
        steps: u64,
    ) {
        eprintln!(
            "  {benchmark} / {} / seed {seed}: {stop:?} after {steps} steps",
            agent.name()
        );
    }

    fn on_budget_exhausted(&self, spent: u64) {
        eprintln!("  global evaluation budget exhausted at {spent} designs");
    }
}

/// Prints a finished campaign as a table and writes it as CSV.
fn print_campaign_report(report: &CampaignReport, out: &OutputDir) {
    let mut rows = Vec::new();
    for cell in &report.cells {
        let s = &cell.summary;
        rows.push(vec![
            cell.benchmark.clone(),
            cell.agent.name(),
            format!("{}/{}", s.reached_target + s.terminated, s.seeds),
            format!("{:.0} +/- {:.0}", s.stop_step.mean, s.stop_step.std_dev),
            format!(
                "{:.1} +/- {:.1}",
                s.solution_power.mean, s.solution_power.std_dev
            ),
            format!("{:.0}%", 100.0 * s.feasible_solutions),
            cell.evaluations.to_string(),
            cell.tier
                .as_ref()
                .map(|t: &TieredStats| format!("{:.0}%", 100.0 * t.avoided_exact_rate()))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("\nCampaign `{}`", report.name);
    println!(
        "{}",
        ascii_table(
            &[
                "benchmark",
                "agent",
                "stopped early",
                "stop step",
                "solution d-power",
                "feasible",
                "evals",
                "interp avoided"
            ],
            &rows
        )
    );
    match report.budget.cap {
        Some(cap) => println!(
            "budget: {} of {cap} designs spent (+{} cooperative overshoot), \
             {} run(s) stopped by the budget scheduler (exhaustion or elimination)",
            report.budget.spent, report.budget.overshoot, report.budget.stopped_runs
        ),
        None => println!(
            "budget: unbounded ({} designs evaluated)",
            report.budget.spent
        ),
    }
    for round in &report.allocations {
        let cells: Vec<String> = round
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{}/{} +{} ({}{})",
                    c.benchmark,
                    c.agent.name(),
                    c.granted,
                    if c.survived { "alive" } else { "out" },
                    if c.best_score.is_finite() {
                        format!(", best {:.2}", c.best_score)
                    } else {
                        String::new()
                    }
                )
            })
            .collect();
        let label = if round.bracket > 0 || report.allocations.iter().any(|a| a.bracket > 0) {
            format!("bracket {} round {}", round.bracket, round.round)
        } else {
            format!("round {}", round.round)
        };
        println!("{label}: {}", cells.join("; "));
    }
    for p in &report.portfolios {
        let w = p.winner();
        println!(
            "{}: winner {} (seed {}, score {:.3}) over {} distinct designs",
            p.benchmark,
            w.kind.name(),
            w.seed,
            w.score,
            p.shared_distinct
        );
    }
    if let Some((i, best)) = report.best_overall() {
        println!(
            "best overall: {} on {} (score {:.3})",
            best.kind.name(),
            report.portfolios[i].benchmark,
            best.score
        );
    }
    out.write(
        "campaign",
        &[
            "benchmark",
            "agent",
            "stopped_early",
            "stop_step",
            "solution_dpower",
            "feasible",
            "evals",
            "interp_avoided",
        ],
        &rows,
    );
}

/// The `run` subcommand: load, (optionally) shrink, execute and report a
/// checked-in campaign spec.
fn run_spec_file(args: &Args) {
    let path = args.spec.as_ref().expect("validated in parse_args");
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read spec {path}: {e}"));
    let mut spec =
        ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| panic!("bad spec {path}: {e}"));
    if args.smoke {
        spec.explore.max_steps = spec.explore.max_steps.min(150);
        spec.seeds.count = spec.seeds.count.min(2);
    }
    if let Some(budget) = args.budget {
        spec.budget = Some(budget);
    }
    if let Some(policy) = &args.policy {
        spec.policy = policy.clone();
        spec.validate()
            .unwrap_or_else(|e| panic!("--policy does not fit {path}: {e}"));
    }
    if let Some(threads) = spec.parallelism {
        // The in-tree rayon shim sizes its pool from AX_THREADS; honour the
        // spec's request unless the operator already pinned it.
        if std::env::var_os("AX_THREADS").is_none() {
            std::env::set_var("AX_THREADS", threads.to_string());
        }
    }
    if args.cache_cap.is_some() && args.cache.is_none() {
        panic!("--cache-cap only bounds a persistent cache; pass --cache FILE too");
    }
    // With --cache-cap the cache (and therefore the saved file) is bounded
    // by the shard capacity; entries past the bound evict FIFO. Shards
    // hold whole entries, so the effective bound is the largest
    // shards x per-shard product at or under the requested cap.
    let bounds = args.cache_cap.map(|cap| {
        let cap = cap.max(1);
        let shards = cap.min(16);
        (shards, (cap / shards).max(1))
    });
    let cache = args.cache.as_ref().map(|p| {
        if std::path::Path::new(p).exists() {
            let cache = match bounds {
                Some((shards, per_shard)) => SharedCache::load_bounded(p, shards, per_shard),
                None => SharedCache::load(p),
            }
            .unwrap_or_else(|e| panic!("cannot load {p}: {e}"));
            eprintln!("loaded {} cached designs from {p}", cache.len());
            cache
        } else {
            match bounds {
                Some((shards, per_shard)) => SharedCache::with_capacity(shards, per_shard),
                None => SharedCache::new(),
            }
        }
    });
    // Build the operator library the spec names (defaults to the
    // six-per-class EvoApprox selection; `evoapprox-extended` widens it).
    let lib = spec.library.build();
    // --trace/--metrics turn telemetry on; otherwise the campaign runs
    // with the zero-overhead disabled handle.
    let telemetry = if args.trace.is_some() || args.metrics.is_some() {
        let t = Telemetry::new();
        if let Some(path) = &args.trace {
            let sink = JsonlSink::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
            t.add_sink(Box::new(sink));
        }
        t
    } else {
        Telemetry::disabled()
    };
    let report = run_spec_traced(&lib, &spec, cache.clone(), &PrintObserver, &telemetry)
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));
    print_campaign_report(&report, &args.out);
    telemetry.flush();
    if let Some(path) = &args.trace {
        eprintln!(
            "wrote {} structured events to {path}",
            telemetry.events_emitted()
        );
    }
    if let Some(path) = &args.metrics {
        let snapshot = telemetry.snapshot().expect("telemetry is enabled");
        std::fs::write(path, snapshot.to_json_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &args.report_json {
        std::fs::write(path, report.to_json_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote machine-readable report to {path}");
    }
    if let Some(path) = &args.front_json {
        assert!(
            !report.pareto.front.is_empty(),
            "campaign finished with an empty Pareto front"
        );
        let doc = report.to_json();
        let front = doc
            .get("pareto")
            .expect("reports always carry a pareto section");
        std::fs::write(path, front.pretty()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!(
            "wrote Pareto front ({} member(s), hypervolume {:.4}) to {path}",
            report.pareto.front.len(),
            report.pareto.hypervolume
        );
    }
    if let (Some(path), Some(cache)) = (&args.cache, &cache) {
        // Concurrent `repro run --cache` processes race on the file:
        // `save_merged` re-merges whatever landed on disk since we loaded
        // and writes the union under one advisory lock (atomic
        // temp-file + rename), so nobody's designs are silently dropped.
        let merged = cache
            .save_merged(path)
            .unwrap_or_else(|e| panic!("cannot save {path}: {e}"));
        if merged > 0 {
            eprintln!("re-merged {merged} on-disk designs from {path} before saving");
        }
        eprintln!("saved {} cached designs to {path}", cache.len());
    }
}

fn explore_opts(steps: u64, seed: u64, reward: f64) -> ExploreOptions {
    ExploreOptions {
        max_steps: steps,
        seed,
        max_reward: reward,
        ..Default::default()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: repro [--out DIR | --no-out] [--steps N] [--seed S] <command>\n       \
                 repro run <spec.json> [--smoke] [--cache FILE] [--cache-cap N]\n               \
                 [--policy uniform|weighted:S1,S2,..|halving:R,K|asha:R,K|\n                \
                 hyperband:R1,K1;R2,K2;..] [--budget N] [--report-json FILE]\n               \
                 [--front-json FRONT.json] [--trace EVENTS.jsonl]\n               \
                 [--metrics METRICS.json]\n       \
                 repro serve [--addr HOST:PORT] [--workers N] [--cache FILE]\n               \
                 [--server-budget N] [--max-job-budget N] [--cache-scopes N]\n               \
                 [--reuse-models] [--smoke]"
            );
            eprintln!(
                "commands: table1 table2 table3 fig2 fig3 fig4 ablation-explorers \
                 ablation-agents ablation-epsilon ablation-thresholds sweep portfolio \
                 surrogate run serve all"
            );
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let opts = explore_opts(args.steps, args.seed, args.reward);
    let run = |cmd: &str| -> bool {
        match cmd {
            "table1" => {
                tables::table1(&args.out);
            }
            "table2" => {
                tables::table2(&args.out);
            }
            "table3" => {
                tables::table3(&opts, &args.out);
            }
            "fig2" => {
                figures::fig2(&opts, &args.out);
            }
            "fig3" => {
                figures::fig3(&opts, &args.out);
            }
            "fig4" => {
                figures::fig4(&opts, &args.out);
            }
            "ablation-explorers" => {
                // Sobel's 4 608-configuration space at a sub-saturating
                // budget separates the explorers (matmul's 576 configs are
                // exhausted by every strategy).
                ablations::explorer_comparison(
                    &Sobel::new(8),
                    args.steps.min(600),
                    args.seed,
                    &args.out,
                );
            }
            "run" => {
                run_spec_file(&args);
            }
            "serve" => {
                let config = ax_serve::ServeConfig {
                    addr: args.addr.clone(),
                    workers: args.workers,
                    cache_path: args.cache.clone(),
                    server_budget: args.server_budget,
                    max_job_budget: args.max_job_budget,
                    cache_max_scopes: args.cache_scopes,
                    smoke: args.smoke,
                    reuse_models: args.reuse_models,
                    ..Default::default()
                };
                let server =
                    ax_serve::Server::bind(config).unwrap_or_else(|e| panic!("cannot bind: {e}"));
                let addr = server.local_addr().expect("bound listener has an address");
                // Both streams: stderr for humans, stdout for scripts that
                // parse the ephemeral port.
                eprintln!("serving campaigns on http://{addr} (POST /shutdown to stop)");
                println!("listening http://{addr}");
                server.run().unwrap_or_else(|e| panic!("serve failed: {e}"));
            }
            "sweep" => {
                let lib = OperatorLibrary::evoapprox();
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let sweep_opts = explore_opts(args.steps.min(3_000), 0, args.reward);
                    let report = Campaign::new("sweep", &lib)
                        .benchmark(wl.as_ref())
                        .agent(AgentKind::QLearning)
                        .seeds(SeedRange::new(0, 10))
                        .options(sweep_opts)
                        .run()
                        .expect("sweep must run");
                    let s = report.cells.into_iter().next().expect("one cell").summary;
                    rows.push(vec![
                        s.benchmark.clone(),
                        format!("{}/{}", s.reached_target, s.seeds),
                        format!("{:.0} +/- {:.0}", s.stop_step.mean, s.stop_step.std_dev),
                        format!(
                            "{:.1} +/- {:.1}",
                            s.solution_power.mean, s.solution_power.std_dev
                        ),
                        format!("{:.0}%", 100.0 * s.feasible_solutions),
                    ]);
                }
                println!("\nSeed-robustness sweep (10 agent seeds)");
                println!(
                    "{}",
                    ascii_table(
                        &[
                            "benchmark",
                            "reached target",
                            "stop step",
                            "solution d-power",
                            "feasible"
                        ],
                        &rows
                    )
                );
                args.out.write(
                    "sweep_seeds",
                    &[
                        "benchmark",
                        "reached_target",
                        "stop_step",
                        "solution_dpower",
                        "feasible",
                    ],
                    &rows,
                );
            }
            "portfolio" => {
                let lib = OperatorLibrary::evoapprox();
                let kinds = [
                    AgentKind::QLearning,
                    AgentKind::Sarsa,
                    AgentKind::ExpectedSarsa,
                    AgentKind::DoubleQ,
                    AgentKind::QLambda { lambda: 0.7 },
                ];
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let race_opts = explore_opts(args.steps.min(3_000), args.seed, args.reward);
                    let report = Campaign::new("portfolio", &lib)
                        .benchmark(wl.as_ref())
                        .agents(&kinds)
                        .seeds(SeedRange::single(race_opts.seed))
                        .options(race_opts)
                        .run()
                        .expect("portfolio must run");
                    let p = report.portfolios.into_iter().next().expect("one benchmark");
                    for (i, e) in p.entries.iter().enumerate() {
                        rows.push(vec![
                            p.benchmark.clone(),
                            e.kind.name(),
                            format!("{:.3}", e.score),
                            if e.feasible {
                                "yes".into()
                            } else {
                                "no".into()
                            },
                            e.summary.steps.to_string(),
                            if i == p.best {
                                "<- winner".into()
                            } else {
                                String::new()
                            },
                        ]);
                    }
                    println!(
                        "{}: {} distinct designs executed across {} racing agents",
                        p.benchmark,
                        p.shared_distinct,
                        p.entries.len()
                    );
                }
                println!("\nAgent portfolio race (shared design cache)");
                println!(
                    "{}",
                    ascii_table(
                        &["benchmark", "agent", "score", "feasible", "steps", ""],
                        &rows
                    )
                );
                args.out.write(
                    "portfolio",
                    &["benchmark", "agent", "score", "feasible", "steps", "winner"],
                    &rows,
                );
            }
            "surrogate" => {
                let lib = OperatorLibrary::evoapprox();
                let kind = AgentKind::QLearning;
                let sweep_opts = explore_opts(args.steps.min(1_000), 0, args.reward);
                let seeds = 8;
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let exact = Campaign::new("surrogate-baseline", &lib)
                        .benchmark(wl.as_ref())
                        .agent(kind)
                        .seeds(SeedRange::new(0, seeds))
                        .options(sweep_opts)
                        .run()
                        .expect("exact sweep must run")
                        .cells
                        .into_iter()
                        .next()
                        .expect("one cell")
                        .summary;
                    let ctx = ax_dse::backend::EvalContext::with_cache(
                        wl.as_ref(),
                        Arc::new(lib.clone()),
                        sweep_opts.input_seed,
                        SharedCache::new(),
                    )
                    .expect("surrogate context must build");
                    let tiered = sweep_in_context_surrogate(
                        &ctx,
                        &sweep_opts,
                        kind,
                        seeds,
                        SurrogateSettings::default(),
                    );
                    let s = &tiered.stats;
                    let errs = tiered
                        .rel_errors
                        .map(|e| {
                            format!(
                                "{:.2}% / {:.2}% / {:.2}%",
                                100.0 * e[0],
                                100.0 * e[1],
                                100.0 * e[2]
                            )
                        })
                        .unwrap_or_else(|| "gate never opened".into());
                    rows.push(vec![
                        exact.benchmark.clone(),
                        format!(
                            "{}/{}",
                            exact.reached_target + exact.terminated,
                            exact.seeds
                        ),
                        format!(
                            "{}/{}",
                            tiered.summary.reached_target + tiered.summary.terminated,
                            tiered.summary.seeds
                        ),
                        format!("{:.0}%", 100.0 * s.avoided_exact_rate()),
                        format!("{:.0}%", 100.0 * s.surrogate_hit_rate()),
                        errs,
                    ]);
                }
                println!("\nTwo-tier evaluation (surrogate prefilter + exact confirm, 8 seeds)");
                println!(
                    "{}",
                    ascii_table(
                        &[
                            "benchmark",
                            "exact stops",
                            "tiered stops",
                            "interp avoided",
                            "surrogate rate",
                            "rel err p/t/acc (audited)"
                        ],
                        &rows
                    )
                );
                args.out.write(
                    "surrogate",
                    &[
                        "benchmark",
                        "exact_stops",
                        "tiered_stops",
                        "interp_avoided",
                        "surrogate_rate",
                        "rel_err",
                    ],
                    &rows,
                );
            }
            "ablation-agents" => {
                ablations::agent_comparison(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            "ablation-epsilon" => {
                ablations::epsilon_ablation(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            "ablation-thresholds" => {
                ablations::threshold_ablation(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            _ => return false,
        }
        true
    };

    let ok = if args.command == "all" {
        for cmd in [
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "ablation-explorers",
            "ablation-agents",
            "sweep",
            "portfolio",
            "surrogate",
            "ablation-epsilon",
            "ablation-thresholds",
        ] {
            run(cmd);
        }
        true
    } else {
        run(&args.command)
    };

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: unknown command `{}`", args.command);
        ExitCode::FAILURE
    }
}
