//! Regenerates every table and figure of the paper plus the ablations.
//!
//! ```text
//! repro [--out DIR] [--steps N] [--seed S] <command>
//!
//! commands:
//!   table1                adder characterisation (paper Table I)
//!   table2                multiplier characterisation (paper Table II)
//!   table3                the four explorations (paper Table III)
//!   fig2                  MatMul 10x10 step series + trends (paper Fig. 2)
//!   fig3                  FIR-100 step series + trends (paper Fig. 3)
//!   fig4                  average reward per 100 steps (paper Fig. 4)
//!   ablation-explorers    Q-learning vs random/hill-climb/SA/GA
//!   ablation-agents       Q-learning vs SARSA/Expected-SARSA/DoubleQ/Q(lambda)
//!   ablation-epsilon      epsilon-schedule sensitivity
//!   ablation-thresholds   threshold-rule sensitivity
//!   sweep                 multi-seed robustness of the explorations (rayon + shared cache)
//!   portfolio             race every agent kind per benchmark over one shared cache
//!   surrogate             two-tier (surrogate prefilter + exact confirm) vs pure-exact sweep
//!   all                   everything above
//! ```

use ax_bench::{ablations, figures, tables, OutputDir};
use ax_dse::explore::AgentKind;
use ax_dse::explore::ExploreOptions;
use ax_dse::report::ascii_table;
use ax_dse::sweep::{race_portfolio, sweep_seeds_parallel};
use ax_operators::OperatorLibrary;
use ax_surrogate::{sweep_seeds_surrogate, SurrogateSettings};
use ax_workloads::fir::Fir;
use ax_workloads::matmul::MatMul;
use ax_workloads::sobel::Sobel;
use ax_workloads::Workload;
use std::process::ExitCode;

struct Args {
    command: String,
    out: OutputDir,
    steps: u64,
    seed: u64,
    reward: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut out = OutputDir::at("results");
    let mut steps = 10_000u64;
    let mut seed = 0u64;
    let mut reward = ExploreOptions::default().max_reward;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                out = OutputDir::at(dir);
            }
            "--no-out" => out = OutputDir::default(),
            "--steps" => {
                steps = it
                    .next()
                    .ok_or("--steps needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --steps: {e}"))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--reward" => {
                reward = it
                    .next()
                    .ok_or("--reward needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --reward: {e}"))?;
            }
            "--help" | "-h" => return Err("help".into()),
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        command: command.ok_or("missing command")?,
        out,
        steps,
        seed,
        reward,
    })
}

fn explore_opts(steps: u64, seed: u64, reward: f64) -> ExploreOptions {
    ExploreOptions {
        max_steps: steps,
        seed,
        max_reward: reward,
        ..Default::default()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!("usage: repro [--out DIR | --no-out] [--steps N] [--seed S] <command>");
            eprintln!(
                "commands: table1 table2 table3 fig2 fig3 fig4 ablation-explorers \
                 ablation-agents ablation-epsilon ablation-thresholds sweep portfolio \
                 surrogate all"
            );
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    let opts = explore_opts(args.steps, args.seed, args.reward);
    let run = |cmd: &str| -> bool {
        match cmd {
            "table1" => {
                tables::table1(&args.out);
            }
            "table2" => {
                tables::table2(&args.out);
            }
            "table3" => {
                tables::table3(&opts, &args.out);
            }
            "fig2" => {
                figures::fig2(&opts, &args.out);
            }
            "fig3" => {
                figures::fig3(&opts, &args.out);
            }
            "fig4" => {
                figures::fig4(&opts, &args.out);
            }
            "ablation-explorers" => {
                // Sobel's 4 608-configuration space at a sub-saturating
                // budget separates the explorers (matmul's 576 configs are
                // exhausted by every strategy).
                ablations::explorer_comparison(
                    &Sobel::new(8),
                    args.steps.min(600),
                    args.seed,
                    &args.out,
                );
            }
            "sweep" => {
                let lib = OperatorLibrary::evoapprox();
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let sweep_opts = explore_opts(args.steps.min(3_000), 0, args.reward);
                    let s = sweep_seeds_parallel(
                        wl.as_ref(),
                        &lib,
                        &sweep_opts,
                        AgentKind::QLearning,
                        10,
                    )
                    .expect("sweep must run");
                    rows.push(vec![
                        s.benchmark.clone(),
                        format!("{}/{}", s.reached_target, s.seeds),
                        format!("{:.0} +/- {:.0}", s.stop_step.mean, s.stop_step.std_dev),
                        format!(
                            "{:.1} +/- {:.1}",
                            s.solution_power.mean, s.solution_power.std_dev
                        ),
                        format!("{:.0}%", 100.0 * s.feasible_solutions),
                    ]);
                }
                println!("\nSeed-robustness sweep (10 agent seeds)");
                println!(
                    "{}",
                    ascii_table(
                        &[
                            "benchmark",
                            "reached target",
                            "stop step",
                            "solution d-power",
                            "feasible"
                        ],
                        &rows
                    )
                );
                args.out.write(
                    "sweep_seeds",
                    &[
                        "benchmark",
                        "reached_target",
                        "stop_step",
                        "solution_dpower",
                        "feasible",
                    ],
                    &rows,
                );
            }
            "portfolio" => {
                let lib = OperatorLibrary::evoapprox();
                let kinds = [
                    AgentKind::QLearning,
                    AgentKind::Sarsa,
                    AgentKind::ExpectedSarsa,
                    AgentKind::DoubleQ,
                    AgentKind::QLambda { lambda: 0.7 },
                ];
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let race_opts = explore_opts(args.steps.min(3_000), args.seed, args.reward);
                    let p = race_portfolio(wl.as_ref(), &lib, &race_opts, &kinds)
                        .expect("portfolio must run");
                    for (i, e) in p.entries.iter().enumerate() {
                        rows.push(vec![
                            p.benchmark.clone(),
                            e.kind.name(),
                            format!("{:.3}", e.score),
                            if e.feasible {
                                "yes".into()
                            } else {
                                "no".into()
                            },
                            e.summary.steps.to_string(),
                            if i == p.best {
                                "<- winner".into()
                            } else {
                                String::new()
                            },
                        ]);
                    }
                    println!(
                        "{}: {} distinct designs executed across {} racing agents",
                        p.benchmark,
                        p.shared_distinct,
                        p.entries.len()
                    );
                }
                println!("\nAgent portfolio race (shared design cache)");
                println!(
                    "{}",
                    ascii_table(
                        &["benchmark", "agent", "score", "feasible", "steps", ""],
                        &rows
                    )
                );
                args.out.write(
                    "portfolio",
                    &["benchmark", "agent", "score", "feasible", "steps", "winner"],
                    &rows,
                );
            }
            "surrogate" => {
                let lib = OperatorLibrary::evoapprox();
                let kind = AgentKind::QLearning;
                let sweep_opts = explore_opts(args.steps.min(1_000), 0, args.reward);
                let seeds = 8;
                let mut rows = Vec::new();
                let benches: Vec<Box<dyn Workload>> =
                    vec![Box::new(MatMul::new(10)), Box::new(Fir::new(100))];
                for wl in &benches {
                    let exact = sweep_seeds_parallel(wl.as_ref(), &lib, &sweep_opts, kind, seeds)
                        .expect("exact sweep must run");
                    let tiered = sweep_seeds_surrogate(
                        wl.as_ref(),
                        &lib,
                        &sweep_opts,
                        kind,
                        seeds,
                        SurrogateSettings::default(),
                    )
                    .expect("surrogate sweep must run");
                    let s = &tiered.stats;
                    let errs = tiered
                        .rel_errors
                        .map(|e| {
                            format!(
                                "{:.2}% / {:.2}% / {:.2}%",
                                100.0 * e[0],
                                100.0 * e[1],
                                100.0 * e[2]
                            )
                        })
                        .unwrap_or_else(|| "gate never opened".into());
                    rows.push(vec![
                        exact.benchmark.clone(),
                        format!(
                            "{}/{}",
                            exact.reached_target + exact.terminated,
                            exact.seeds
                        ),
                        format!(
                            "{}/{}",
                            tiered.summary.reached_target + tiered.summary.terminated,
                            tiered.summary.seeds
                        ),
                        format!("{:.0}%", 100.0 * s.avoided_exact_rate()),
                        format!("{:.0}%", 100.0 * s.surrogate_hit_rate()),
                        errs,
                    ]);
                }
                println!("\nTwo-tier evaluation (surrogate prefilter + exact confirm, 8 seeds)");
                println!(
                    "{}",
                    ascii_table(
                        &[
                            "benchmark",
                            "exact stops",
                            "tiered stops",
                            "interp avoided",
                            "surrogate rate",
                            "rel err p/t/acc (audited)"
                        ],
                        &rows
                    )
                );
                args.out.write(
                    "surrogate",
                    &[
                        "benchmark",
                        "exact_stops",
                        "tiered_stops",
                        "interp_avoided",
                        "surrogate_rate",
                        "rel_err",
                    ],
                    &rows,
                );
            }
            "ablation-agents" => {
                ablations::agent_comparison(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            "ablation-epsilon" => {
                ablations::epsilon_ablation(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            "ablation-thresholds" => {
                ablations::threshold_ablation(&MatMul::new(10), args.steps.min(3_000), &args.out);
            }
            _ => return false,
        }
        true
    };

    let ok = if args.command == "all" {
        for cmd in [
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "ablation-explorers",
            "ablation-agents",
            "sweep",
            "portfolio",
            "surrogate",
            "ablation-epsilon",
            "ablation-thresholds",
        ] {
            run(cmd);
        }
        true
    } else {
        run(&args.command)
    };

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: unknown command `{}`", args.command);
        ExitCode::FAILURE
    }
}
