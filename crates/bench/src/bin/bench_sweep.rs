//! Emits `BENCH_sweep.json`: cold- vs. warm-cache sweep wall-clock.
//!
//! ```text
//! bench_sweep [--out FILE] [--seeds N] [--steps N] [--reps N]
//! ```
//!
//! "Cold" fans a multi-seed sweep out with rayon over a fresh shared
//! cache; "warm" re-runs the identical seed set against the cache the
//! cold pass filled, so every design evaluation is a hash lookup. The
//! JSON is the repo's perf-trajectory record — future PRs append their
//! own runs and compare (`threads` records the worker cap rayon had).

use ax_dse::evaluator::{EvalContext, SharedCache};
use ax_dse::explore::{explore_in_context, AgentKind, ExploreOptions};
use ax_operators::OperatorLibrary;
use ax_workloads::matmul::MatMul;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    seeds: u64,
    steps: u64,
    reps: u32,
}

fn parse() -> Result<Config, String> {
    let mut cfg = Config {
        out: "BENCH_sweep.json".into(),
        seeds: 8,
        steps: 300,
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => cfg.out = take("--out")?,
            "--seeds" => {
                cfg.seeds = take("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--steps" => {
                cfg.steps = take("--steps")?
                    .parse()
                    .map_err(|e| format!("bad --steps: {e}"))?;
            }
            "--reps" => {
                cfg.reps = take("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: bench_sweep [--out FILE] [--seeds N] [--steps N] [--reps N]");
            std::process::exit(1);
        }
    };

    let lib = OperatorLibrary::evoapprox();
    let opts = |seed| ExploreOptions {
        max_steps: cfg.steps,
        seed,
        ..Default::default()
    };

    // The measured unit is the same rayon fan-out the production sweeps
    // use: seeds in parallel over one shared-cache context.
    let run_all = |ctx: &EvalContext| {
        (0..cfg.seeds).into_par_iter().for_each(|seed| {
            explore_in_context(ctx, &opts(seed), AgentKind::QLearning).expect("sweep run");
        });
    };

    // Best-of-N to shave scheduler noise; the cold context is rebuilt per
    // rep so its cache really starts empty.
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    let mut warm_ctx = None;
    for _ in 0..cfg.reps.max(1) {
        let ctx = EvalContext::with_cache(
            &MatMul::new(10),
            Arc::new(lib.clone()),
            opts(0).input_seed,
            SharedCache::new(),
        )
        .expect("context");
        let t = Instant::now();
        run_all(&ctx);
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        warm_ctx = Some(ctx);
    }
    let ctx = warm_ctx.expect("at least one rep");
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        run_all(&ctx);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    let cache = ctx.shared_cache().expect("shared cache");
    let speedup = cold_ms / warm_ms;
    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"seeds\": {},\n  \"max_steps\": {},\n  \
         \"threads\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"speedup\": {:.2},\n  \"distinct_designs\": {},\n  \"cache_hits\": {}\n}}\n",
        ctx.benchmark(),
        cfg.seeds,
        cfg.steps,
        rayon_threads(),
        cold_ms,
        warm_ms,
        speedup,
        cache.len(),
        cache.hits(),
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!("wrote {}", cfg.out);
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}
