//! Appends to `BENCH_sweep.json`: cold- vs. warm-cache sweep wall-clock.
//!
//! ```text
//! bench_sweep [--out FILE] [--seeds N] [--steps N] [--reps N]
//!             [--spec FILE] [--emit-spec FILE] [--policy P]
//!             [--exec-compare]
//! ```
//!
//! "Cold" fans a multi-seed sweep out with rayon over a fresh shared
//! cache; "warm" re-runs the identical seed set against the cache the
//! cold pass filled, so every design evaluation is a hash lookup. The
//! JSON is the repo's perf-trajectory record — each run *appends* its
//! record to the file (`threads` records the worker cap rayon had).
//!
//! `--spec FILE` takes the benchmark, seed count and step cap from a
//! campaign [`ExperimentSpec`] instead of the defaults; `--emit-spec
//! FILE` writes the spec equivalent to whatever this invocation measured,
//! ready for `repro run`.
//!
//! `--exec-compare` replaces the sweep with a head-to-head of the two
//! exact execution engines: the full enumerated design space of the
//! benchmark (every adder × multiplier × variable mask, ordered
//! mask-major — the sweep hot path) is evaluated cold through the
//! threaded-code compiler and through the interpreter reference, the
//! outcomes are asserted bit-identical, and the wall-clock comparison is
//! appended. Exits nonzero if the compiled engine fails to beat the
//! interpreter — the regression this record exists to catch.
//!
//! `--policy P` (e.g. `halving:3,0.5` or `asha:2,0.5`) additionally races
//! a MatMul×FIR campaign grid under that budget policy at 55 % of the
//! evaluation spend of an exhaustive (unbounded) run of the same grid, and
//! appends a policy record comparing best-design rewards and evaluation
//! counts. When the policy is `asha:…` the record also runs the
//! synchronous `halving` counterpart with the same shape, so the file
//! carries the sync-vs-async evaluations-to-best-score comparison
//! directly.
//!
//! `--pareto` races the same MatMul×FIR grid multi-objectively: an
//! exhaustive (unbounded) scalarised run fixes the reference front over
//! (QoR error, op cost), then a Pareto-ranked successive-halving run at
//! 70 % of the exhaustive evaluation spend must recover it. The appended
//! record carries both hypervolumes (against the same reference point),
//! both evaluation counts and the recovered-front fraction — the
//! hypervolume-vs-evals trajectory of the multi-objective scheduler.
//!
//! `--serve` replaces the sweep with a daemon-throughput measurement:
//! the `ax-serve` campaign daemon is booted in-process on an ephemeral
//! port, a batch of identical campaigns is pushed through the real HTTP
//! path from concurrent client threads, and the appended record carries
//! jobs/sec plus the shared cache's hit rate (every job replays the same
//! `(benchmark, input_seed)` scope, so the serve figure isolates
//! dispatch + cache-sharing overhead rather than raw evaluation).

use ax_bench::append_bench_record;
use ax_dse::campaign::{BenchmarkSpec, BudgetPolicy, Campaign, ExperimentSpec, SeedRange};
use ax_dse::evaluator::{EvalContext, SharedCache};
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::json::Json;
use ax_operators::{AdderId, MulId};
use ax_workloads::workload::Workload;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    out: String,
    seeds: Option<u64>,
    steps: Option<u64>,
    reps: u32,
    spec: Option<String>,
    emit_spec: Option<String>,
    policy: Option<String>,
    exec_compare: bool,
    serve: bool,
    pareto: bool,
}

fn parse() -> Result<Config, String> {
    let mut cfg = Config {
        out: "BENCH_sweep.json".into(),
        seeds: None,
        steps: None,
        reps: 3,
        spec: None,
        emit_spec: None,
        policy: None,
        exec_compare: false,
        serve: false,
        pareto: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => cfg.out = take("--out")?,
            "--seeds" => {
                cfg.seeds = Some(
                    take("--seeds")?
                        .parse()
                        .map_err(|e| format!("bad --seeds: {e}"))?,
                );
            }
            "--steps" => {
                cfg.steps = Some(
                    take("--steps")?
                        .parse()
                        .map_err(|e| format!("bad --steps: {e}"))?,
                );
            }
            "--reps" => {
                cfg.reps = take("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--spec" => cfg.spec = Some(take("--spec")?),
            "--emit-spec" => cfg.emit_spec = Some(take("--emit-spec")?),
            "--policy" => cfg.policy = Some(take("--policy")?),
            "--exec-compare" => cfg.exec_compare = true,
            "--serve" => cfg.serve = true,
            "--pareto" => cfg.pareto = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_sweep [--out FILE] [--seeds N] [--steps N] [--reps N] \
                 [--spec FILE] [--emit-spec FILE] [--policy P] [--exec-compare] [--serve] \
                 [--pareto]"
            );
            std::process::exit(1);
        }
    };

    // The measured workload: MatMul 10x10 by default, or whatever a
    // campaign spec names first. Precedence: explicit flags beat the
    // spec, the spec beats the built-in defaults.
    let mut bench_spec = BenchmarkSpec::MatMul(10);
    let (mut spec_seeds, mut spec_steps) = (None, None);
    if let Some(path) = &cfg.spec {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let spec = ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        bench_spec = spec.benchmarks[0];
        spec_seeds = Some(spec.seeds.count);
        spec_steps = Some(spec.explore.max_steps);
    }
    let seeds = cfg.seeds.or(spec_seeds).unwrap_or(8);
    let steps = cfg.steps.or(spec_steps).unwrap_or(300);
    let wl = bench_spec.build();

    let lib = ax_operators::OperatorLibrary::evoapprox();

    if cfg.exec_compare {
        append_exec_compare_record(&cfg.out, wl.as_ref(), &lib, cfg.reps);
        return;
    }

    if cfg.serve {
        append_serve_record(&cfg.out, bench_spec, &wl.name(), seeds, steps);
        return;
    }

    if cfg.pareto {
        append_pareto_record(&cfg.out, steps, seeds);
        return;
    }

    let opts = |seed| ExploreOptions {
        max_steps: steps,
        seed,
        ..Default::default()
    };

    if let Some(path) = &cfg.emit_spec {
        let spec = ExperimentSpec::new("bench-sweep")
            .benchmark(bench_spec)
            .agent(AgentKind::QLearning)
            .seeds(SeedRange::new(0, seeds))
            .explore(opts(0));
        std::fs::write(path, spec.to_json_string()).expect("write spec");
        eprintln!("wrote {path}");
    }

    // The measured unit is the same rayon fan-out the production campaigns
    // use: seeds in parallel over one shared-cache context.
    let run_all = |ctx: &EvalContext| {
        (0..seeds).into_par_iter().for_each(|seed| {
            ax_dse::campaign::explore(ctx, &opts(seed), AgentKind::QLearning);
        });
    };

    // Best-of-N to shave scheduler noise; the cold context is rebuilt per
    // rep so its cache really starts empty.
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    let mut warm_ctx = None;
    for _ in 0..cfg.reps.max(1) {
        let ctx = EvalContext::with_cache(
            wl.as_ref(),
            Arc::new(lib.clone()),
            opts(0).input_seed,
            SharedCache::new(),
        )
        .expect("context");
        let t = Instant::now();
        run_all(&ctx);
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        warm_ctx = Some(ctx);
    }
    let ctx = warm_ctx.expect("at least one rep");
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        run_all(&ctx);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    let cache = ctx.shared_cache().expect("shared cache");
    let record = Json::obj(vec![
        ("benchmark", Json::str(ctx.benchmark())),
        ("seeds", Json::u64(seeds)),
        ("max_steps", Json::u64(steps)),
        ("threads", Json::u64(rayon::current_num_threads() as u64)),
        ("cold_ms", Json::Num(format!("{cold_ms:.3}"))),
        ("warm_ms", Json::Num(format!("{warm_ms:.3}"))),
        ("speedup", Json::Num(format!("{:.2}", cold_ms / warm_ms))),
        ("distinct_designs", Json::u64(cache.len() as u64)),
        ("cache_hits", Json::u64(cache.hits())),
        ("cache_misses", Json::u64(cache.misses())),
        (
            "cache_hit_rate",
            Json::Num(format!(
                "{:.4}",
                cache.hits() as f64 / (cache.hits() + cache.misses()).max(1) as f64
            )),
        ),
    ]);
    print!("{}", record.pretty());
    append_bench_record(&cfg.out, record).expect("append BENCH_sweep.json");
    eprintln!("appended to {}", cfg.out);

    if let Some(policy_text) = &cfg.policy {
        let policy = BudgetPolicy::parse_cli(policy_text).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        append_policy_record(&cfg.out, policy_text, policy, &lib, steps, seeds);
    }
}

/// Boots the `ax-serve` daemon in-process on an ephemeral port, pushes a
/// batch of identical campaigns through the real HTTP path from
/// concurrent client threads, and appends a serve-throughput record:
/// jobs/sec end-to-end (submit → last report ready) plus the shared
/// cache's hit rate. Every job replays the same `(benchmark, input_seed)`
/// scope, so after the first wave fills the cache the figure measures the
/// daemon's dispatch and cache-sharing overhead, not raw evaluation.
fn append_serve_record(out: &str, bench: BenchmarkSpec, bench_name: &str, seeds: u64, steps: u64) {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    const JOBS: usize = 6;
    const WORKERS: usize = 3;

    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to daemon");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("response has headers");
        let status = head
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        (status, body.to_owned())
    }

    let server = ax_serve::Server::bind(ax_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: WORKERS,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));

    let bodies: Vec<String> = (0..JOBS)
        .map(|i| {
            ExperimentSpec::new(format!("serve-bench-{i}"))
                .benchmark(bench)
                .agent(AgentKind::QLearning)
                .seeds(SeedRange::new(0, seeds))
                .explore(ExploreOptions {
                    max_steps: steps,
                    ..Default::default()
                })
                .to_json_string()
        })
        .collect();

    let t = Instant::now();
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let submits: Vec<_> = bodies
            .iter()
            .map(|body| {
                scope.spawn(move || {
                    let (status, reply) = http(addr, "POST", "/campaigns", body);
                    assert_eq!(status, 200, "submit failed: {reply}");
                    Json::parse(&reply)
                        .expect("submit reply is JSON")
                        .get("id")
                        .expect("submit reply has an id")
                        .as_u64()
                        .expect("id is numeric")
                })
            })
            .collect();
        submits
            .into_iter()
            .map(|s| s.join().expect("submit thread"))
            .collect()
    });
    for &id in &ids {
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            let (status, body) = http(addr, "GET", &format!("/campaigns/{id}"), "");
            assert_eq!(status, 200, "status poll failed: {body}");
            let doc = Json::parse(&body).expect("status is JSON");
            let state = doc
                .get("state")
                .expect("status has a state")
                .as_str()
                .expect("state is a string")
                .to_owned();
            match state.as_str() {
                "completed" => break,
                "failed" | "cancelled" => panic!("job {id} ended `{state}`: {body}"),
                _ => {}
            }
            assert!(Instant::now() < deadline, "job {id} stuck in `{state}`");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let elapsed_s = t.elapsed().as_secs_f64();

    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "metrics failed: {metrics}");
    let metrics = Json::parse(&metrics).expect("metrics is JSON");
    let cache_stat = |name: &str| {
        metrics
            .get("cache")
            .and_then(|c| c.get(name))
            .expect("metrics has cache stats")
            .as_u64()
            .expect("cache stat is numeric")
    };
    let (hits, misses) = (cache_stat("hits"), cache_stat("misses"));

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread exits cleanly");

    let record = Json::obj(vec![
        ("serve_jobs", Json::u64(JOBS as u64)),
        ("workers", Json::u64(WORKERS as u64)),
        ("benchmark", Json::str(bench_name)),
        ("seeds", Json::u64(seeds)),
        ("max_steps", Json::u64(steps)),
        ("elapsed_ms", Json::Num(format!("{:.3}", elapsed_s * 1e3))),
        (
            "jobs_per_sec",
            Json::Num(format!("{:.3}", JOBS as f64 / elapsed_s)),
        ),
        ("cache_hits", Json::u64(hits)),
        ("cache_misses", Json::u64(misses)),
        (
            "cache_hit_rate",
            Json::Num(format!(
                "{:.4}",
                hits as f64 / (hits + misses).max(1) as f64
            )),
        ),
    ]);
    print!("{}", record.pretty());
    append_bench_record(out, record).expect("append serve record");
    eprintln!("appended serve record to {out}");
}

/// Races the MatMul×FIR grid multi-objectively: an exhaustive scalarised
/// run fixes the reference Pareto front over (QoR error, op cost) on the
/// widened operator library, then a Pareto-ranked successive-halving run
/// at 70 % of the exhaustive evaluation spend must recover it. Appends
/// the hypervolume-vs-evals comparison (both hypervolumes are measured
/// against the exhaustive run's resolved reference point, so they are
/// directly comparable).
fn append_pareto_record(out: &str, steps: u64, seeds: u64) {
    use ax_dse::campaign::{Objective, ObjectiveDecl, Ranking};
    use ax_dse::pareto::hypervolume;

    // The widened library: two extra variants per operator family keep
    // the MatMul×FIR fronts from degenerating to two points.
    let lib = ax_operators::OperatorLibrary::evoapprox_extended();
    let (matmul, fir) = (
        ax_workloads::matmul::MatMul::new(10),
        ax_workloads::fir::Fir::new(100),
    );
    // Four agent kinds per benchmark: enough cell diversity for a
    // non-degenerate (>2-point) front over the widened library.
    let agents = [
        AgentKind::QLearning,
        AgentKind::Sarsa,
        AgentKind::ExpectedSarsa,
        AgentKind::DoubleQ,
    ];
    let opts = ExploreOptions {
        max_steps: steps,
        ..Default::default()
    };
    let objectives = vec![
        ObjectiveDecl::new(Objective::QorError),
        ObjectiveDecl::new(Objective::OpCost),
    ];
    let campaign = |budget: Option<u64>, policy: Option<BudgetPolicy>, ranking: Ranking| {
        let mut c = Campaign::new("bench-pareto", &lib)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, seeds.min(2)))
            .options(opts)
            .objectives(objectives.clone())
            .ranking(ranking);
        if let Some(b) = budget {
            c = c.budget(b);
        }
        if let Some(p) = policy {
            c = c.policy(p);
        }
        c.run().expect("pareto campaign must run")
    };

    let exhaustive = campaign(None, None, Ranking::Scalarised);
    let exhaustive_evals = exhaustive.budget.spent;
    let budget = (exhaustive_evals * 70 / 100).max(1);
    let policed = campaign(
        Some(budget),
        Some(BudgetPolicy::SuccessiveHalving {
            rounds: 2,
            keep_fraction: 0.5,
        }),
        Ranking::Pareto,
    );
    let pareto_evals = policed.budget.charged();

    // Recovery: every exhaustive front point must reappear on the
    // budgeted run's front — same cell, same objective vector.
    let recovered = exhaustive
        .pareto
        .front
        .iter()
        .filter(|p| {
            policed
                .pareto
                .front
                .iter()
                .any(|q| q.cell == p.cell && q.values == p.values)
        })
        .count();
    let front_points = |report: &ax_dse::campaign::CampaignReport| -> Vec<Vec<f64>> {
        report
            .pareto
            .front
            .iter()
            .map(|p| p.values.clone())
            .collect()
    };
    let reference = exhaustive.pareto.reference.clone();
    let hv_exhaustive = hypervolume(&front_points(&exhaustive), &reference);
    let hv_pareto = hypervolume(&front_points(&policed), &reference);

    let record = Json::obj(vec![
        ("benchmark", Json::str("matmul-10x10 x fir-100")),
        ("kind", Json::str("pareto")),
        ("library", Json::str("evoapprox-extended")),
        ("policy", Json::str("halving:2,0.5")),
        ("objectives", Json::str("qor-error,op-cost")),
        ("seeds", Json::u64(seeds.min(2))),
        ("max_steps", Json::u64(steps)),
        ("threads", Json::u64(rayon::current_num_threads() as u64)),
        ("exhaustive_evals", Json::u64(exhaustive_evals)),
        ("pareto_budget", Json::u64(budget)),
        ("pareto_evals", Json::u64(pareto_evals)),
        (
            "evals_fraction",
            Json::Num(format!(
                "{:.3}",
                pareto_evals as f64 / exhaustive_evals.max(1) as f64
            )),
        ),
        (
            "front_size_exhaustive",
            Json::u64(exhaustive.pareto.front.len() as u64),
        ),
        (
            "front_size_pareto",
            Json::u64(policed.pareto.front.len() as u64),
        ),
        ("front_recovered", Json::u64(recovered as u64)),
        (
            "front_recovered_fraction",
            Json::Num(format!(
                "{:.3}",
                recovered as f64 / exhaustive.pareto.front.len().max(1) as f64
            )),
        ),
        (
            "hypervolume_exhaustive",
            Json::Num(format!("{hv_exhaustive:.6}")),
        ),
        ("hypervolume_pareto", Json::Num(format!("{hv_pareto:.6}"))),
    ]);
    print!("{}", record.pretty());
    append_bench_record(out, record).expect("append pareto record");
    eprintln!("appended pareto record to {out}");

    if recovered < exhaustive.pareto.front.len() {
        eprintln!(
            "error: budgeted Pareto run recovered {recovered} of {} exhaustive front points",
            exhaustive.pareto.front.len()
        );
        std::process::exit(1);
    }
}

/// Races the MatMul×FIR campaign grid under `policy` at 55 % of the
/// evaluation spend of an exhaustive run, and appends the comparison.
fn append_policy_record(
    out: &str,
    policy_text: &str,
    policy: BudgetPolicy,
    lib: &ax_operators::OperatorLibrary,
    steps: u64,
    seeds: u64,
) {
    let (matmul, fir) = (
        ax_workloads::matmul::MatMul::new(10),
        ax_workloads::fir::Fir::new(100),
    );
    let agents = [AgentKind::QLearning, AgentKind::Sarsa];
    let opts = ExploreOptions {
        max_steps: steps,
        ..Default::default()
    };
    let campaign = |budget: Option<u64>, policy: Option<BudgetPolicy>| {
        let mut c = Campaign::new("bench-policy", lib)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, seeds.min(2)))
            .options(opts);
        if let Some(b) = budget {
            c = c.budget(b);
        }
        if let Some(p) = policy {
            c = c.policy(p);
        }
        c.run().expect("policy campaign must run")
    };
    let best_of = |report: &ax_dse::campaign::CampaignReport| {
        report
            .cells
            .iter()
            .map(|c| c.best_score)
            .fold(f64::NEG_INFINITY, f64::max)
    };

    let exhaustive = campaign(None, None);
    let exhaustive_evals = exhaustive.budget.spent;
    let budget = (exhaustive_evals * 55 / 100).max(1);
    let policed = campaign(Some(budget), Some(policy.clone()));
    let policy_evals = policed.budget.charged();

    // An async policy is only worth recording against its synchronous
    // counterpart: same rung shape, same budget, barrier back in place.
    let sync_twin = match &policy {
        BudgetPolicy::AsyncHalving {
            rungs,
            keep_fraction,
        } => Some(campaign(
            Some(budget),
            Some(BudgetPolicy::SuccessiveHalving {
                rounds: *rungs,
                keep_fraction: *keep_fraction,
            }),
        )),
        _ => None,
    };

    let mut record = Json::obj(vec![
        ("benchmark", Json::str("matmul-10x10 x fir-100")),
        ("policy", Json::str(policy_text)),
        ("seeds", Json::u64(seeds.min(2))),
        ("max_steps", Json::u64(steps)),
        ("threads", Json::u64(rayon::current_num_threads() as u64)),
        ("exhaustive_evals", Json::u64(exhaustive_evals)),
        ("policy_budget", Json::u64(budget)),
        ("policy_evals", Json::u64(policy_evals)),
        (
            "evals_fraction",
            Json::Num(format!(
                "{:.3}",
                policy_evals as f64 / exhaustive_evals.max(1) as f64
            )),
        ),
        (
            "best_score_exhaustive",
            Json::Num(format!("{:.4}", best_of(&exhaustive))),
        ),
        (
            "best_score_policy",
            Json::Num(format!("{:.4}", best_of(&policed))),
        ),
        ("rounds", Json::u64(policed.allocations.len() as u64)),
    ]);
    if let (Json::Obj(pairs), Some(sync)) = (&mut record, &sync_twin) {
        pairs.push((
            "sync_halving_evals".into(),
            Json::u64(sync.budget.charged()),
        ));
        pairs.push((
            "best_score_sync_halving".into(),
            Json::Num(format!("{:.4}", best_of(sync))),
        ));
    }
    print!("{}", record.pretty());
    append_bench_record(out, record).expect("append policy record");
    eprintln!("appended policy record to {out}");
}

/// Evaluates the benchmark's full enumerated design space — every
/// (adder, multiplier) pair at every variable mask, ordered mask-major so
/// the compiled engine's rewrite-skipping path is exercised the way a real
/// sweep exercises it — cold through both exact engines, best-of-`reps`,
/// and appends the wall-clock comparison. The two outcome vectors are
/// asserted bit-identical first; timing a divergent engine would be
/// meaningless.
///
/// Exits nonzero if the compiled engine is not faster than the
/// interpreter.
fn append_exec_compare_record(
    out: &str,
    wl: &dyn Workload,
    lib: &ax_operators::OperatorLibrary,
    reps: u32,
) {
    let prepared = wl.prepare(0).expect("prepare workload");
    let adders = lib.adders(prepared.program.add_width()).len();
    let muls = lib.multipliers(prepared.program.mul_width()).len();
    // Full mask space over the approximable variables, capped so huge
    // kernels stay enumerable.
    let mask_vars = prepared.program.approximable_vars().len().min(4) as u32;
    let mut configs = Vec::new();
    for bits in 0..(1u64 << mask_vars) {
        for a in 0..adders {
            for m in 0..muls {
                configs.push((AdderId(a), MulId(m), bits));
            }
        }
    }

    let (compiled_out, batch_stats) = prepared
        .run_batch_stats(lib, &configs)
        .expect("compiled batch");
    let interpreted_out = prepared
        .run_batch_interpreted(lib, &configs)
        .expect("interpreted batch");
    assert_eq!(
        compiled_out, interpreted_out,
        "compiled and interpreted engines diverged"
    );

    let time_best = |f: &dyn Fn()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let compiled_ms = time_best(&|| {
        prepared.run_batch(lib, &configs).expect("compiled batch");
    });
    // The batched reference interpreter: shared memory image, reused
    // scratch, instruction flags recomputed only on mask changes.
    let interpreted_batched_ms = time_best(&|| {
        prepared
            .run_batch_interpreted(lib, &configs)
            .expect("interpreted batch");
    });
    // The per-design interpreter baseline: what a sweep paid before the
    // batch APIs — a fresh executor, scratch allocation and instruction
    // flag computation for every single design.
    let interpreted_ms = time_best(&|| {
        for &(a, m, bits) in &configs {
            let binding = ax_vm::exec::Binding::new(lib, &prepared.program, a, m).expect("binding");
            let mask = ax_vm::instrument::VarMask::with_bits(&prepared.program, bits);
            prepared.run(&binding, &mask).expect("interpreted run");
        }
    });

    let speedup = interpreted_ms / compiled_ms;
    let record = Json::obj(vec![
        ("benchmark", Json::str(wl.name())),
        ("kind", Json::str("exec-compare")),
        ("configs", Json::u64(configs.len() as u64)),
        ("mask_vars", Json::u64(u64::from(mask_vars))),
        ("reps", Json::u64(u64::from(reps.max(1)))),
        ("compiled_ms", Json::Num(format!("{compiled_ms:.3}"))),
        ("interpreted_ms", Json::Num(format!("{interpreted_ms:.3}"))),
        (
            "interpreted_batched_ms",
            Json::Num(format!("{interpreted_batched_ms:.3}")),
        ),
        ("speedup", Json::Num(format!("{speedup:.2}"))),
        (
            "speedup_vs_batched",
            Json::Num(format!("{:.2}", interpreted_batched_ms / compiled_ms)),
        ),
        // Telemetry-derived batch shape: how far the group cache and
        // in-group dedup collapsed the nominal design count.
        ("batch_groups", Json::u64(batch_stats.groups)),
        ("signature_hits", Json::u64(batch_stats.signature_hits)),
        ("dedup_hits", Json::u64(batch_stats.dedup_hits)),
        ("kernel_designs", Json::u64(batch_stats.kernel_designs)),
        (
            "collapse_factor",
            match batch_stats.collapse_factor() {
                Some(f) => Json::Num(format!("{f:.2}")),
                None => Json::Null,
            },
        ),
    ]);
    print!("{}", record.pretty());
    append_bench_record(out, record).expect("append exec-compare record");
    eprintln!("appended exec-compare record to {out}");

    if compiled_ms >= interpreted_ms {
        eprintln!(
            "error: compiled engine ({compiled_ms:.3} ms) did not beat the \
             interpreter ({interpreted_ms:.3} ms)"
        );
        std::process::exit(1);
    }
}
