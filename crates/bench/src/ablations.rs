//! Ablation studies beyond the paper's headline experiments.
//!
//! * [`explorer_comparison`] — Q-learning vs the classic DSE baselines
//!   (random, hill climbing, simulated annealing, genetic) at an equal
//!   evaluation budget, compared on best scalarised score and on the Pareto
//!   hypervolume of their evaluated sets;
//! * [`epsilon_ablation`] — exploration-schedule sensitivity of the RL agent;
//! * [`threshold_ablation`] — sensitivity of the found solutions to the
//!   paper's 50 % / 50 % / 0.4 threshold rule.

use crate::OutputDir;
use ax_agents::schedule::Schedule;
use ax_agents::search::{
    genetic_algorithm, hill_climb, random_search, simulated_annealing, AnnealingOptions,
    GeneticOptions,
};
use ax_dse::analysis::hypervolume_2d;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::report::{ascii_table, fmt_metric};
use ax_dse::search_adapter::DseSearchSpace;
use ax_dse::thresholds::ThresholdRule;
use ax_dse::Evaluator;
use ax_operators::OperatorLibrary;
use ax_workloads::Workload;

/// One explorer's result in the comparison.
#[derive(Debug, Clone)]
pub struct ExplorerResult {
    /// Explorer name.
    pub name: String,
    /// Best scalarised score found (see [`DseSearchSpace`] docs).
    pub best_score: f64,
    /// Evaluations spent (distinct executions may be fewer via the cache).
    pub evaluations: u64,
    /// Hypervolume of the feasible (Δpower, Δtime) gains over (0, 0),
    /// normalised by precise power × time.
    pub hypervolume: f64,
}

fn feasible_hypervolume(evaluator: &Evaluator, acc_th: f64) -> f64 {
    let pts: Vec<(f64, f64)> = evaluator
        .evaluated()
        .iter()
        .filter(|(_, m)| m.delta_acc <= acc_th)
        .map(|(_, m)| {
            (
                m.delta_power / evaluator.precise_power(),
                m.delta_time / evaluator.precise_time(),
            )
        })
        .collect();
    hypervolume_2d(&pts, (0.0, 0.0))
}

/// Compares Q-learning with the classic baselines on one workload at an
/// equal evaluation budget.
pub fn explorer_comparison(
    workload: &dyn Workload,
    budget: u64,
    seed: u64,
    out: &OutputDir,
) -> Vec<ExplorerResult> {
    let lib = OperatorLibrary::evoapprox();
    let mut results = Vec::new();

    // Q-learning: spend `budget` environment steps, score its best feasible
    // configuration with the same scalarisation the baselines optimise.
    {
        let opts = ExploreOptions {
            max_steps: budget,
            seed,
            ..Default::default()
        };
        let outcome = crate::explore_one(workload, &lib, &opts, AgentKind::QLearning);
        let th = outcome.thresholds;
        let (pp, pt) = (
            outcome.evaluator.precise_power(),
            outcome.evaluator.precise_time(),
        );
        let best = outcome
            .evaluator
            .evaluated()
            .iter()
            .filter(|(_, m)| m.delta_acc <= th.acc_th)
            .map(|(_, m)| m.delta_power / pp + m.delta_time / pt)
            .fold(f64::NEG_INFINITY, f64::max);
        results.push(ExplorerResult {
            name: "q-learning".into(),
            best_score: best,
            evaluations: outcome.trace.len() as u64,
            hypervolume: feasible_hypervolume(&outcome.evaluator, th.acc_th),
        });
    }

    // Classic baselines share the scalarised search space.
    type Runner = Box<dyn Fn(&mut DseSearchSpace<'_>) -> (f64, u64)>;
    let baselines: Vec<(&str, Runner)> = vec![
        (
            "random",
            Box::new(move |space: &mut DseSearchSpace<'_>| {
                let o = random_search(space, budget, seed);
                (o.best_score, o.evaluations)
            }),
        ),
        (
            "hill-climb",
            Box::new(move |space: &mut DseSearchSpace<'_>| {
                let o = hill_climb(space, budget, 32, seed);
                (o.best_score, o.evaluations)
            }),
        ),
        (
            "sim-anneal",
            Box::new(move |space: &mut DseSearchSpace<'_>| {
                let o = simulated_annealing(
                    space,
                    AnnealingOptions {
                        budget,
                        t_initial: 0.5,
                        t_final: 0.01,
                        seed,
                    },
                );
                (o.best_score, o.evaluations)
            }),
        ),
        (
            "genetic",
            Box::new(move |space: &mut DseSearchSpace<'_>| {
                let pop = 20usize;
                let gens = ((budget as usize).saturating_sub(pop) / (pop - 2)).max(1) as u32;
                let o = genetic_algorithm(
                    space,
                    GeneticOptions {
                        population: pop,
                        generations: gens,
                        seed,
                        ..Default::default()
                    },
                );
                (o.best_score, o.evaluations)
            }),
        ),
    ];

    for (name, run) in baselines {
        let mut evaluator =
            Evaluator::new(workload, &lib, ExploreOptions::default().input_seed).unwrap();
        let th = ThresholdRule::paper().calibrate(&evaluator);
        let (best_score, evaluations) = {
            let mut space = DseSearchSpace::new(&mut evaluator, th);
            run(&mut space)
        };
        results.push(ExplorerResult {
            name: name.into(),
            best_score,
            evaluations,
            hypervolume: feasible_hypervolume(&evaluator, th.acc_th),
        });
    }

    let headers = [
        "explorer",
        "best score",
        "evaluations",
        "feasible hypervolume",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.4}", r.best_score),
                r.evaluations.to_string(),
                format!("{:.4}", r.hypervolume),
            ]
        })
        .collect();
    println!(
        "\nAblation A: explorer comparison on {} (budget {budget})",
        workload.name()
    );
    println!("{}", ascii_table(&headers, &rows));
    out.write(
        &format!("ablation_explorers_{}", workload.name()),
        &headers,
        &rows,
    );
    results
}

/// Compares the learning algorithms (the paper's Q-learning vs SARSA,
/// Expected SARSA, Double Q and Watkins Q(λ)) on one workload — the paper's
/// "improve the learning strategy" future-work direction.
pub fn agent_comparison(
    workload: &dyn Workload,
    steps: u64,
    out: &OutputDir,
) -> Vec<(String, f64, u64)> {
    let lib = OperatorLibrary::evoapprox();
    let kinds = [
        AgentKind::QLearning,
        AgentKind::Sarsa,
        AgentKind::ExpectedSarsa,
        AgentKind::DoubleQ,
        AgentKind::QLambda { lambda: 0.8 },
    ];
    let mut results = Vec::new();
    for kind in kinds {
        let opts = ExploreOptions {
            max_steps: steps,
            ..Default::default()
        };
        let o = crate::explore_one(workload, &lib, &opts, kind);
        results.push((kind.name(), o.log.total_reward(), o.summary.steps));
    }
    let headers = ["agent", "final cumulative reward", "stop step"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, cum, st)| vec![n.clone(), fmt_metric(*cum), st.to_string()])
        .collect();
    println!(
        "\nAblation D: learning algorithms on {} ({steps}-step cap)",
        workload.name()
    );
    println!("{}", ascii_table(&headers, &rows));
    out.write(
        &format!("ablation_agents_{}", workload.name()),
        &headers,
        &rows,
    );
    results
}

/// ε-schedule sensitivity of the Q-learning exploration.
pub fn epsilon_ablation(
    workload: &dyn Workload,
    steps: u64,
    out: &OutputDir,
) -> Vec<(String, f64)> {
    let lib = OperatorLibrary::evoapprox();
    let schedules: Vec<(&str, Schedule)> = vec![
        ("constant-0.1", Schedule::Constant(0.1)),
        ("constant-0.3", Schedule::Constant(0.3)),
        (
            "linear-1.0->0.05",
            Schedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: steps / 2,
            },
        ),
        (
            "exp-1.0->0.05",
            Schedule::Exponential {
                start: 1.0,
                end: 0.05,
                decay: 0.999,
            },
        ),
    ];
    let mut results = Vec::new();
    for (name, eps) in schedules {
        let opts = ExploreOptions {
            max_steps: steps,
            epsilon: eps,
            ..Default::default()
        };
        let outcome = crate::explore_one(workload, &lib, &opts, AgentKind::QLearning);
        let final_cum = outcome.log.total_reward();
        results.push((name.to_owned(), final_cum));
    }
    let headers = ["epsilon schedule", "final cumulative reward"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, v)| vec![n.clone(), fmt_metric(*v)])
        .collect();
    println!(
        "\nAblation B: epsilon schedules on {} ({steps} steps)",
        workload.name()
    );
    println!("{}", ascii_table(&headers, &rows));
    out.write(
        &format!("ablation_epsilon_{}", workload.name()),
        &headers,
        &rows,
    );
    results
}

/// Threshold-rule sensitivity: how the solution moves as the paper's
/// fractions change.
pub fn threshold_ablation(
    workload: &dyn Workload,
    steps: u64,
    out: &OutputDir,
) -> Vec<Vec<String>> {
    let lib = OperatorLibrary::evoapprox();
    let rules = [
        ("paper (0.5/0.5/0.4)", ThresholdRule::paper()),
        (
            "lenient gains (0.25/0.25/0.4)",
            ThresholdRule {
                power_frac: 0.25,
                time_frac: 0.25,
                acc_frac: 0.4,
            },
        ),
        (
            "strict gains (0.75/0.75/0.4)",
            ThresholdRule {
                power_frac: 0.75,
                time_frac: 0.75,
                acc_frac: 0.4,
            },
        ),
        (
            "tight accuracy (0.5/0.5/0.2)",
            ThresholdRule {
                power_frac: 0.5,
                time_frac: 0.5,
                acc_frac: 0.2,
            },
        ),
        (
            "loose accuracy (0.5/0.5/0.8)",
            ThresholdRule {
                power_frac: 0.5,
                time_frac: 0.5,
                acc_frac: 0.8,
            },
        ),
    ];
    let headers = [
        "threshold rule",
        "solution d-power",
        "solution d-time",
        "solution acc-degr",
        "steps",
    ];
    let mut rows = Vec::new();
    for (name, rule) in rules {
        let opts = ExploreOptions {
            max_steps: steps,
            rule,
            ..Default::default()
        };
        let o = crate::explore_one(workload, &lib, &opts, AgentKind::QLearning);
        rows.push(vec![
            name.to_owned(),
            fmt_metric(o.summary.power.solution),
            fmt_metric(o.summary.time.solution),
            fmt_metric(o.summary.accuracy.solution),
            o.summary.steps.to_string(),
        ]);
    }
    println!(
        "\nAblation C: threshold sensitivity on {} ({steps} steps)",
        workload.name()
    );
    println!("{}", ascii_table(&headers, &rows));
    out.write(
        &format!("ablation_thresholds_{}", workload.name()),
        &headers,
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ax_workloads::dot::DotProduct;

    #[test]
    fn explorer_comparison_produces_all_five() {
        let r = explorer_comparison(&DotProduct::new(8), 150, 3, &OutputDir::default());
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].name, "q-learning");
        for e in &r {
            assert!(e.best_score.is_finite(), "{}", e.name);
            assert!(e.hypervolume >= 0.0);
        }
    }

    #[test]
    fn agent_comparison_runs_all_kinds() {
        let r = agent_comparison(&DotProduct::new(8), 150, &OutputDir::default());
        assert_eq!(r.len(), 5);
        let names: Vec<&str> = r.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"q-learning") && names.contains(&"q-lambda(0.8)"));
    }

    #[test]
    fn epsilon_ablation_runs_all_schedules() {
        let r = epsilon_ablation(&DotProduct::new(8), 200, &OutputDir::default());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn threshold_ablation_runs_all_rules() {
        let rows = threshold_ablation(&DotProduct::new(8), 200, &OutputDir::default());
        assert_eq!(rows.len(), 5);
    }
}
