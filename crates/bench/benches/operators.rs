//! Throughput of the approximate operator models.
//!
//! Not a paper experiment: these benches guard the simulation substrate's
//! performance (the DSE executes millions of modelled operations per
//! exploration, so a slow model family would dominate wall-clock time).

use ax_operators::{BitWidth, OperatorLibrary};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_adders(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("adders");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for width in [BitWidth::W8, BitWidth::W16] {
        for entry in lib.adders(width) {
            let model = entry.model;
            group.bench_function(format!("{width}/{}", entry.spec.name()), |b| {
                let mut x = 1u64;
                b.iter(|| {
                    // Cheap LCG keeps inputs varied without measuring an RNG.
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = x & width.mask();
                    let bb = (x >> 17) & width.mask();
                    black_box(model.add(a, bb))
                })
            });
        }
    }
    group.finish();
}

fn bench_multipliers(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("multipliers");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for width in [BitWidth::W8, BitWidth::W32] {
        for entry in lib.multipliers(width) {
            let model = entry.model;
            group.bench_function(format!("{width}/{}", entry.spec.name()), |b| {
                let mut x = 1u64;
                b.iter(|| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = x & width.mask();
                    let bb = (x >> 13) & width.mask();
                    black_box(model.mul(a, bb))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adders, bench_multipliers);
criterion_main!(benches);
