//! Cold- vs. warm-cache sweep throughput.
//!
//! The parallel evaluation engine's claim: a multi-seed sweep against an
//! already-populated [`SharedCache`] costs hash lookups instead of
//! interpreter runs. `sweep/cold` builds a fresh cache per iteration;
//! `sweep/warm` reuses one context whose cache the first sweep filled.
//! `BENCH_sweep.json` (written by the `bench_sweep` binary) records the
//! same cold/warm pair for the perf trajectory across PRs.

use ax_dse::campaign::{explore, Campaign, SeedRange};
use ax_dse::evaluator::{EvalContext, SharedCache};
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_operators::OperatorLibrary;
use ax_workloads::matmul::MatMul;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const SEEDS: u64 = 8;

fn opts(seed: u64) -> ExploreOptions {
    ExploreOptions {
        max_steps: 300,
        seed,
        ..Default::default()
    }
}

fn bench_sweeps(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("sweep");
    group
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);

    group.bench_function("cold/matmul-10x8seeds", |b| {
        b.iter(|| {
            black_box(
                Campaign::new("bench-sweep", &lib)
                    .benchmark(&MatMul::new(10))
                    .agent(AgentKind::QLearning)
                    .seeds(SeedRange::new(0, SEEDS))
                    .options(opts(0))
                    .run()
                    .unwrap(),
            )
        })
    });

    group.bench_function("warm/matmul-10x8seeds", |b| {
        // One context whose shared cache keeps every design of the first
        // pass; subsequent sweeps of the same seeds are pure cache hits.
        let ctx = EvalContext::with_cache(
            &MatMul::new(10),
            Arc::new(lib.clone()),
            opts(0).input_seed,
            SharedCache::new(),
        )
        .unwrap();
        for seed in 0..SEEDS {
            explore(&ctx, &opts(seed), AgentKind::QLearning);
        }
        b.iter(|| {
            for seed in 0..SEEDS {
                black_box(explore(&ctx, &opts(seed), AgentKind::QLearning));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
