//! RL agent update-rule throughput.

use ax_agents::agent::{TabularAgent, TabularTransition};
use ax_agents::policy::ExplorationPolicy;
use ax_agents::qlearning::QLearningBuilder;
use ax_agents::schedule::Schedule;
use ax_agents::train::{train, TrainOptions};
use ax_gym::toy::LineWorld;
use ax_gym::wrappers::TimeLimit;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_qlearning_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("qlearning");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    group.bench_function("select+observe", |b| {
        let mut agent = QLearningBuilder::new(16).seed(1).build::<u64>();
        let mut s = 0u64;
        b.iter(|| {
            let a = agent.select_action(&s);
            agent.observe(TabularTransition {
                state: s,
                action: a,
                reward: 0.5,
                next_state: s + 1,
                terminal: false,
            });
            s = (s + 1) % 1000;
            black_box(a)
        })
    });

    group.bench_function("train-lineworld-1000", |b| {
        b.iter(|| {
            let mut env = TimeLimit::new(LineWorld::new(10), 50);
            let mut agent = QLearningBuilder::new(2).seed(3).build();
            black_box(train(
                &mut env,
                &mut agent,
                &TrainOptions::new(1_000).seed(5),
            ))
        })
    });
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let q_row: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);

    for (name, policy) in [
        (
            "eps-greedy",
            ExplorationPolicy::EpsilonGreedy {
                epsilon: Schedule::Constant(0.1),
            },
        ),
        (
            "softmax",
            ExplorationPolicy::Softmax {
                temperature: Schedule::Constant(0.5),
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(policy.choose(&q_row, 100, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qlearning_step, bench_policies);
criterion_main!(benches);
