//! End-to-end DSE throughput: environment steps and short explorations.

use ax_dse::backend::EvalContext;
use ax_dse::campaign::explore;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::reward::RewardParams;
use ax_dse::thresholds::ThresholdRule;
use ax_dse::{DseEnv, Evaluator};
use ax_gym::env::Env;
use ax_operators::OperatorLibrary;
use ax_workloads::dot::DotProduct;
use ax_workloads::matmul::MatMul;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_env_step(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("env");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    // Cold steps evaluate fresh configurations; warm steps hit the cache.
    group.bench_function("step/matmul-10-warm", |b| {
        let ev = Evaluator::new(&MatMul::new(10), &lib, 7).unwrap();
        let th = ThresholdRule::paper().calibrate(&ev);
        let mut env = DseEnv::new(ev, RewardParams::new(100.0, th));
        env.reset(None);
        let n = env.action_count();
        let mut i = 0usize;
        // Warm the cache by touring all actions once.
        for a in 0..n {
            env.step(&a);
        }
        b.iter(|| {
            i = (i + 1) % n;
            black_box(env.step(&i))
        })
    });
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("explore");
    group
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10);

    group.bench_function("qlearning-dot8-500-steps", |b| {
        let opts = ExploreOptions {
            max_steps: 500,
            ..Default::default()
        };
        b.iter(|| {
            let ctx = EvalContext::new(
                &DotProduct::new(8),
                std::sync::Arc::new(lib.clone()),
                opts.input_seed,
            )
            .unwrap();
            black_box(explore(&ctx, &opts, AgentKind::QLearning))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_env_step, bench_exploration);
criterion_main!(benches);
