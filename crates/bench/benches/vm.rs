//! Instrumented-interpreter throughput on the paper's benchmarks.

use ax_operators::{AdderId, MulId, OperatorLibrary};
use ax_vm::exec::Binding;
use ax_vm::instrument::VarMask;
use ax_workloads::fir::Fir;
use ax_workloads::matmul::MatMul;
use ax_workloads::Workload;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_workload_execution(c: &mut Criterion) {
    let lib = OperatorLibrary::evoapprox();
    let mut group = c.benchmark_group("execute");
    group
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);

    let cases: Vec<(&str, Box<dyn Workload>)> = vec![
        ("matmul-10", Box::new(MatMul::new(10))),
        ("fir-100", Box::new(Fir::new(100))),
    ];
    for (label, wl) in cases {
        let prepared = wl.prepare(7).unwrap();
        let precise = Binding::precise(&lib, &prepared.program).unwrap();
        let approx = Binding::new(&lib, &prepared.program, AdderId(4), MulId(4)).unwrap();
        let none = VarMask::none(&prepared.program);
        let all = VarMask::all(&prepared.program);
        let mut executor = prepared.executor().unwrap();

        group.bench_function(format!("{label}/precise"), |b| {
            b.iter(|| black_box(executor.run(&precise, &none).unwrap()))
        });
        group.bench_function(format!("{label}/approx-all"), |b| {
            b.iter(|| black_box(executor.run(&approx, &all).unwrap()))
        });
    }
    group.finish();
}

fn bench_instrumentation(c: &mut Criterion) {
    let program = MatMul::new(10).build().unwrap();
    let mask = VarMask::all(&program);
    c.bench_function("instruction_flags/matmul-10", |b| {
        b.iter(|| black_box(ax_vm::instrument::instruction_flags(&program, &mask)))
    });
}

criterion_group!(benches, bench_workload_execution, bench_instrumentation);
criterion_main!(benches);
