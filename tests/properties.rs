//! Cross-crate property-based tests.

use axdse_suite::ax_dse::campaign::GlobalScheduler;
use axdse_suite::ax_dse::config::{AxConfig, SpaceDims};
use axdse_suite::ax_dse::pareto::{dominates, hypervolume, non_dominated_ranks, rank_order};
use axdse_suite::ax_dse::reward::{reward, RewardParams};
use axdse_suite::ax_dse::thresholds::Thresholds;
use axdse_suite::ax_dse::EvalMetrics;
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::{AdderId, MulId, OperatorLibrary};
use axdse_suite::ax_workloads::dot::DotProduct;
use proptest::prelude::*;

const DIMS: SpaceDims = SpaceDims {
    n_add: 6,
    n_mul: 6,
    n_vars: 4,
};

fn arb_config() -> impl Strategy<Value = AxConfig> {
    (0usize..6, 0usize..6, 0u64..16).prop_map(|(a, m, v)| AxConfig {
        adder: AdderId(a),
        mul: MulId(m),
        vars: v,
    })
}

fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..12)
        .prop_map(|ps| ps.into_iter().map(|(a, b)| vec![a, b]).collect())
}

fn arb_metrics() -> impl Strategy<Value = EvalMetrics> {
    (0.0f64..500.0, -100.0f64..500.0, -100.0f64..500.0).prop_map(|(acc, p, t)| EvalMetrics {
        delta_acc: acc,
        delta_power: p,
        delta_time: t,
        signed_error: 0.0,
        power: 0.0,
        time_ns: 0.0,
    })
}

proptest! {
    /// Algorithm 1 is total and its outputs take exactly the four documented
    /// values; terminate implies maximal reward.
    #[test]
    fn reward_is_total_and_bounded(config in arb_config(), m in arb_metrics()) {
        let params = RewardParams::new(
            50.0,
            Thresholds { acc_th: 100.0, power_th: 50.0, time_th: 50.0 },
        );
        let (r, term) = reward(&config, DIMS, &m, &params);
        prop_assert!(r == 1.0 || r == -1.0 || r == 50.0 || r == -50.0);
        if term {
            prop_assert_eq!(r, 50.0);
            prop_assert!(config.is_fully_approximate(DIMS));
            prop_assert!(m.delta_acc <= 100.0);
        }
        if m.delta_acc > 100.0 {
            prop_assert_eq!(r, -50.0);
        }
    }

    /// Tightening the accuracy threshold never turns a penalised
    /// configuration into a rewarded one (monotonicity of Algorithm 1).
    #[test]
    fn reward_monotone_in_accuracy_threshold(
        config in arb_config(),
        m in arb_metrics(),
        th_lo in 1.0f64..200.0,
        extra in 1.0f64..200.0,
    ) {
        let th_hi = th_lo + extra;
        let mk = |acc_th| RewardParams::new(
            50.0,
            Thresholds { acc_th, power_th: 50.0, time_th: 50.0 },
        );
        let (r_tight, _) = reward(&config, DIMS, &m, &mk(th_lo));
        let (r_loose, _) = reward(&config, DIMS, &m, &mk(th_hi));
        prop_assert!(r_loose >= r_tight, "loosening hurt: {r_tight} -> {r_loose}");
    }

    /// Neighbour moves always stay valid and differ in exactly one axis.
    #[test]
    fn neighbors_are_single_axis_moves(config in arb_config(), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let n = config.neighbor(DIMS, &mut rng);
        prop_assert!(n.is_valid(DIMS));
        let changes = [
            n.adder != config.adder,
            n.mul != config.mul,
            n.vars != config.vars,
        ].iter().filter(|&&c| c).count();
        prop_assert_eq!(changes, 1);
    }

    /// Evaluator metrics are self-consistent for arbitrary configurations:
    /// Δ values complement the absolute values against the precise run, and
    /// MAE dominates the literal signed mean error.
    #[test]
    fn evaluator_metric_identities(config in arb_config()) {
        let lib = OperatorLibrary::evoapprox();
        let mut ev = Evaluator::new(&DotProduct::new(6), &lib, 3).unwrap();
        prop_assume!(config.is_valid(ev.dims()));
        let m = ev.evaluate(&config).unwrap();
        prop_assert!((m.delta_power - (ev.precise_power() - m.power)).abs() < 1e-9);
        prop_assert!((m.delta_time - (ev.precise_time() - m.time_ns)).abs() < 1e-9);
        prop_assert!(m.delta_acc >= m.signed_error.abs() - 1e-9);
        prop_assert!(m.delta_acc >= 0.0);
    }

    /// The server-wide budget stack of the campaign daemon: jobs with
    /// arbitrary priorities, per-job caps and demands, drained through a
    /// [`GlobalScheduler`], never push the aggregate spend past the
    /// server cap or any job past its own cap — and the per-job ledger
    /// reconstructs the server's spend exactly.
    #[test]
    fn global_scheduler_budget_stack_never_exceeds_any_cap(
        server_cap_raw in 0u64..150,
        max_job_budget_raw in 0u64..60,
        jobs_raw in prop::collection::vec((0u8..4, 0u64..50, 0u64..70), 1..8),
    ) {
        // The shim has no Option strategy: 0 encodes "unbounded".
        let server_cap = (server_cap_raw > 0).then_some(server_cap_raw);
        let max_job_budget = (max_job_budget_raw > 0).then_some(max_job_budget_raw);
        let jobs: Vec<(u8, Option<u64>, u64)> = jobs_raw
            .into_iter()
            .map(|(p, r, d)| (p, (r > 0).then_some(r), d))
            .collect();
        let sched = GlobalScheduler::new(server_cap, 2, max_job_budget);
        let tickets: Vec<_> = jobs
            .iter()
            .map(|&(priority, requested, _)| sched.submit(priority, requested))
            .collect();
        // Drain in admission order (priority desc, id asc) so a single
        // thread mirrors what the daemon's worker pool converges to. Each
        // "evaluation" checks both stacked budgets before charging them
        // with the same delta — exactly the campaign driver's contract.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].0), i));
        let mut expected_total = 0u64;
        for &i in &order {
            prop_assert!(sched.acquire(&tickets[i]));
            for _ in 0..jobs[i].2 {
                if tickets[i].budget().exhausted() || sched.server().exhausted() {
                    break;
                }
                tickets[i].budget().charge(1);
                sched.server().charge(1);
            }
            sched.finish(&tickets[i]);
            // Sequentially, each job gets min(demand, own cap, what the
            // server has left).
            let own_cap = match (jobs[i].1, max_job_budget) {
                (Some(r), Some(m)) => Some(r.min(m)),
                (r, m) => r.or(m),
            };
            let mut want = jobs[i].2;
            if let Some(cap) = own_cap {
                want = want.min(cap);
            }
            if let Some(cap) = server_cap {
                want = want.min(cap - expected_total);
            }
            prop_assert_eq!(tickets[i].budget().spent(), want);
            expected_total += want;
        }
        if let Some(cap) = server_cap {
            prop_assert!(sched.server().spent() <= cap);
        }
        prop_assert_eq!(sched.server().spent(), expected_total);
        prop_assert_eq!(sched.jobs_spent_total(), sched.server().spent());
        prop_assert_eq!(sched.counts(), (0, 0, 0, jobs.len()));
    }

    /// Non-dominated sorting is sound: no rank-0 point is dominated by
    /// anything, and the survival order leads with exactly the front.
    #[test]
    fn no_front_member_is_dominated(points in arb_points()) {
        let ranks = non_dominated_ranks(&points);
        for (i, &r) in ranks.iter().enumerate() {
            if r == 0 {
                for p in &points {
                    prop_assert!(
                        !dominates(p, &points[i]),
                        "{p:?} dominates front member {:?}",
                        points[i]
                    );
                }
            }
        }
        let order = rank_order(&points);
        let front = ranks.iter().filter(|&&r| r == 0).count();
        prop_assert!(front >= 1);
        for &i in &order[..front] {
            prop_assert_eq!(ranks[i], 0, "survival order must lead with the front");
        }
    }

    /// Hypervolume is monotone: adding a point that dominates an existing
    /// one (or any point at all) never shrinks the dominated volume.
    #[test]
    fn hypervolume_monotone_under_adding_a_dominating_point(
        points in arb_points(),
        frac in 0.0f64..0.99,
    ) {
        let reference = [10.0, 10.0];
        let base = hypervolume(&points, &reference);
        prop_assert!(base >= 0.0);
        let mut more = points.clone();
        // Scale the first point toward the ideal corner: componentwise
        // no worse, so it dominates (or equals) its parent.
        more.push(vec![points[0][0] * frac, points[0][1] * frac]);
        let grown = hypervolume(&more, &reference);
        prop_assert!(
            grown >= base - 1e-12,
            "hypervolume shrank: {base} -> {grown}"
        );
        // And the union never exceeds the reference box itself.
        prop_assert!(grown <= 10.0 * 10.0 + 1e-9);
    }

    /// The precise adder/multiplier pair with any variable selection is
    /// error-free: selecting variables only matters with approximate
    /// operators bound.
    #[test]
    fn precise_operators_are_error_free_under_any_mask(vars in 0u64..16) {
        let lib = OperatorLibrary::evoapprox();
        let mut ev = Evaluator::new(&DotProduct::new(6), &lib, 3).unwrap();
        let config = AxConfig { adder: AdderId(0), mul: MulId(0), vars };
        let m = ev.evaluate(&config).unwrap();
        prop_assert_eq!(m.delta_acc, 0.0);
        prop_assert_eq!(m.delta_power, 0.0);
        prop_assert_eq!(m.delta_time, 0.0);
    }
}
