//! Cross-crate property-based tests.

use axdse_suite::ax_dse::config::{AxConfig, SpaceDims};
use axdse_suite::ax_dse::reward::{reward, RewardParams};
use axdse_suite::ax_dse::thresholds::Thresholds;
use axdse_suite::ax_dse::EvalMetrics;
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::{AdderId, MulId, OperatorLibrary};
use axdse_suite::ax_workloads::dot::DotProduct;
use proptest::prelude::*;

const DIMS: SpaceDims = SpaceDims {
    n_add: 6,
    n_mul: 6,
    n_vars: 4,
};

fn arb_config() -> impl Strategy<Value = AxConfig> {
    (0usize..6, 0usize..6, 0u64..16).prop_map(|(a, m, v)| AxConfig {
        adder: AdderId(a),
        mul: MulId(m),
        vars: v,
    })
}

fn arb_metrics() -> impl Strategy<Value = EvalMetrics> {
    (0.0f64..500.0, -100.0f64..500.0, -100.0f64..500.0).prop_map(|(acc, p, t)| EvalMetrics {
        delta_acc: acc,
        delta_power: p,
        delta_time: t,
        signed_error: 0.0,
        power: 0.0,
        time_ns: 0.0,
    })
}

proptest! {
    /// Algorithm 1 is total and its outputs take exactly the four documented
    /// values; terminate implies maximal reward.
    #[test]
    fn reward_is_total_and_bounded(config in arb_config(), m in arb_metrics()) {
        let params = RewardParams::new(
            50.0,
            Thresholds { acc_th: 100.0, power_th: 50.0, time_th: 50.0 },
        );
        let (r, term) = reward(&config, DIMS, &m, &params);
        prop_assert!(r == 1.0 || r == -1.0 || r == 50.0 || r == -50.0);
        if term {
            prop_assert_eq!(r, 50.0);
            prop_assert!(config.is_fully_approximate(DIMS));
            prop_assert!(m.delta_acc <= 100.0);
        }
        if m.delta_acc > 100.0 {
            prop_assert_eq!(r, -50.0);
        }
    }

    /// Tightening the accuracy threshold never turns a penalised
    /// configuration into a rewarded one (monotonicity of Algorithm 1).
    #[test]
    fn reward_monotone_in_accuracy_threshold(
        config in arb_config(),
        m in arb_metrics(),
        th_lo in 1.0f64..200.0,
        extra in 1.0f64..200.0,
    ) {
        let th_hi = th_lo + extra;
        let mk = |acc_th| RewardParams::new(
            50.0,
            Thresholds { acc_th, power_th: 50.0, time_th: 50.0 },
        );
        let (r_tight, _) = reward(&config, DIMS, &m, &mk(th_lo));
        let (r_loose, _) = reward(&config, DIMS, &m, &mk(th_hi));
        prop_assert!(r_loose >= r_tight, "loosening hurt: {r_tight} -> {r_loose}");
    }

    /// Neighbour moves always stay valid and differ in exactly one axis.
    #[test]
    fn neighbors_are_single_axis_moves(config in arb_config(), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let n = config.neighbor(DIMS, &mut rng);
        prop_assert!(n.is_valid(DIMS));
        let changes = [
            n.adder != config.adder,
            n.mul != config.mul,
            n.vars != config.vars,
        ].iter().filter(|&&c| c).count();
        prop_assert_eq!(changes, 1);
    }

    /// Evaluator metrics are self-consistent for arbitrary configurations:
    /// Δ values complement the absolute values against the precise run, and
    /// MAE dominates the literal signed mean error.
    #[test]
    fn evaluator_metric_identities(config in arb_config()) {
        let lib = OperatorLibrary::evoapprox();
        let mut ev = Evaluator::new(&DotProduct::new(6), &lib, 3).unwrap();
        prop_assume!(config.is_valid(ev.dims()));
        let m = ev.evaluate(&config).unwrap();
        prop_assert!((m.delta_power - (ev.precise_power() - m.power)).abs() < 1e-9);
        prop_assert!((m.delta_time - (ev.precise_time() - m.time_ns)).abs() < 1e-9);
        prop_assert!(m.delta_acc >= m.signed_error.abs() - 1e-9);
        prop_assert!(m.delta_acc >= 0.0);
    }

    /// The precise adder/multiplier pair with any variable selection is
    /// error-free: selecting variables only matters with approximate
    /// operators bound.
    #[test]
    fn precise_operators_are_error_free_under_any_mask(vars in 0u64..16) {
        let lib = OperatorLibrary::evoapprox();
        let mut ev = Evaluator::new(&DotProduct::new(6), &lib, 3).unwrap();
        let config = AxConfig { adder: AdderId(0), mul: MulId(0), vars };
        let m = ev.evaluate(&config).unwrap();
        prop_assert_eq!(m.delta_acc, 0.0);
        prop_assert_eq!(m.delta_power, 0.0);
        prop_assert_eq!(m.delta_time, 0.0);
    }
}
