//! Conformance of the live environment against Algorithm 1.
//!
//! Replays real exploration traces and recomputes every reward from the
//! recorded metrics and the calibrated thresholds — the environment must
//! agree with the paper's pseudocode at every step.

use axdse_suite::ax_dse::backend::EvalContext;
use axdse_suite::ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use axdse_suite::ax_dse::reward::{reward, RewardParams};
use axdse_suite::ax_dse::thresholds::ThresholdRule;
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::OperatorLibrary;
use axdse_suite::ax_workloads::dot::DotProduct;
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::Workload;

/// The paper's Q-learning exploration through the campaign primitive.
fn explore_qlearning(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
) -> ExplorationOutcome {
    let ctx = EvalContext::new(workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark builds against the library");
    axdse_suite::ax_dse::campaign::explore(&ctx, opts, AgentKind::QLearning)
}

fn replay_and_check(workload: &dyn Workload, steps: u64) {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: steps,
        ..Default::default()
    };
    let outcome = explore_qlearning(workload, &lib, &opts);

    let ev = Evaluator::new(workload, &lib, opts.input_seed).unwrap();
    let dims = ev.dims();
    let params = RewardParams::new(opts.max_reward, outcome.thresholds);

    let mut cumulative = 0.0;
    for t in &outcome.trace {
        let (expect_r, expect_term) = reward(&t.config, dims, &t.metrics, &params);
        assert_eq!(t.reward, expect_r, "step {}: reward mismatch", t.step);
        assert_eq!(
            t.terminated, expect_term,
            "step {}: terminate mismatch",
            t.step
        );
        cumulative += t.reward;
    }
    assert!(
        (outcome.log.total_reward() - cumulative).abs() < 1e-9,
        "cumulative reward bookkeeping diverged"
    );

    // Algorithm 1's branch structure: rewards take exactly four values.
    for t in &outcome.trace {
        let r = t.reward;
        assert!(
            r == 1.0 || r == -1.0 || r == opts.max_reward || r == -opts.max_reward,
            "step {}: reward {r} outside Algorithm 1's range",
            t.step
        );
    }

    // The terminate flag implies the fully-approximate configuration.
    for t in &outcome.trace {
        if t.terminated {
            assert!(t.config.is_fully_approximate(dims), "step {}", t.step);
            assert_eq!(t.reward, opts.max_reward);
        }
    }
}

#[test]
fn dot_product_trace_conforms_to_algorithm_1() {
    replay_and_check(&DotProduct::new(8), 600);
}

#[test]
fn matmul_trace_conforms_to_algorithm_1() {
    replay_and_check(&MatMul::new(5), 600);
}

/// Thresholds calibrate from the precise run exactly as the paper specifies
/// (50 % / 50 % / 0.4 of the respective precise quantities).
#[test]
fn threshold_calibration_matches_paper_rule() {
    let lib = OperatorLibrary::evoapprox();
    let ev = Evaluator::new(&MatMul::new(5), &lib, 42).unwrap();
    let th = ThresholdRule::paper().calibrate(&ev);
    assert!((th.power_th - 0.5 * ev.precise_power()).abs() < 1e-12);
    assert!((th.time_th - 0.5 * ev.precise_time()).abs() < 1e-12);
    assert!((th.acc_th - 0.4 * ev.mean_abs_output()).abs() < 1e-12);
}

/// Stopping on the cumulative-reward target never overshoots by more than
/// one step's reward.
#[test]
fn reward_target_stop_is_tight() {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 10_000,
        max_reward: 10.0,
        rule: ThresholdRule {
            power_frac: 0.01,
            time_frac: 0.01,
            acc_frac: 5.0,
        },
        ..Default::default()
    };
    let o = explore_qlearning(&DotProduct::new(6), &lib, &opts);
    if o.stop_reason == axdse_suite::ax_agents::train::StopReason::RewardTarget {
        let total = o.log.total_reward();
        assert!(
            total >= 10.0 && total <= 10.0 + opts.max_reward,
            "total {total}"
        );
        // Before the final step the target had not been reached.
        let prior: f64 = total - o.trace.last().unwrap().reward;
        assert!(prior < 10.0, "stopped late: prior cumulative {prior}");
    }
}
