//! Seed-determinism across the whole stack.
//!
//! Every random choice in the workspace flows from explicit seeds; identical
//! seeds must give bit-identical results at every layer, or the paper's
//! experiments would not be reproducible run to run.

use axdse_suite::ax_dse::evaluator::{EvalContext, SharedCache};
use axdse_suite::ax_dse::explore::AgentKind;
use axdse_suite::ax_dse::explore::{explore_in_context, explore_qlearning, ExploreOptions};
use axdse_suite::ax_dse::sweep::{sweep_seeds, sweep_seeds_parallel};
use axdse_suite::ax_operators::{
    characterize_multiplier, BitWidth, CharacterizeMode, MulKind, MulModel, OperatorLibrary,
};
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::Workload;
use std::sync::Arc;

#[test]
fn workload_inputs_are_seed_deterministic() {
    {
        let (a, b) = (MatMul::new(6).inputs(9), MatMul::new(6).inputs(9));
        assert_eq!(a, b);
    }
    assert_eq!(Fir::new(40).inputs(3), Fir::new(40).inputs(3));
    assert_ne!(Fir::new(40).inputs(3), Fir::new(40).inputs(4));
}

#[test]
fn monte_carlo_characterisation_is_deterministic() {
    let m = MulModel::new(MulKind::Drum { k: 6 }, BitWidth::W32);
    let mode = CharacterizeMode::MonteCarlo {
        samples: 200_000,
        seed: 5,
    };
    assert_eq!(
        characterize_multiplier(&m, mode),
        characterize_multiplier(&m, mode)
    );
}

#[test]
fn neighborhood_batching_preserves_trajectories() {
    // Evaluating the whole action neighbourhood per step through
    // `evaluate_batch` must not change what the agent observes: identical
    // trajectories, logs and summaries — only the evaluation pattern
    // differs. (ROADMAP follow-up: batch whole action-neighbourhoods
    // through the env step loop.)
    let lib = OperatorLibrary::evoapprox();
    let plain = ExploreOptions {
        max_steps: 300,
        ..Default::default()
    };
    let batched = ExploreOptions {
        batch_neighborhood: true,
        ..plain
    };
    for wl in [MatMul::new(4), MatMul::new(6)] {
        let a = explore_qlearning(&wl, &lib, &plain).unwrap();
        let b = explore_qlearning(&wl, &lib, &batched).unwrap();
        assert_eq!(a.trace, b.trace, "{}", wl.name());
        assert_eq!(a.log, b.log, "{}", wl.name());
        assert_eq!(a.summary, b.summary, "{}", wl.name());
        // The batched run speculatively evaluates whole neighbourhoods,
        // so it knows at least as many distinct designs.
        assert!(b.distinct_configs >= a.distinct_configs, "{}", wl.name());
    }
}

#[test]
fn surrogate_always_fallback_sweep_matches_exact_sweep() {
    use axdse_suite::ax_surrogate::{sweep_seeds_surrogate, SurrogateSettings};
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 150,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let exact = sweep_seeds(&wl, &lib, &opts, AgentKind::QLearning, 3).unwrap();
    let tiered = sweep_seeds_surrogate(
        &wl,
        &lib,
        &opts,
        AgentKind::QLearning,
        3,
        SurrogateSettings::always_fallback(),
    )
    .unwrap();
    assert_eq!(exact, tiered.summary);
}

#[test]
fn full_exploration_is_deterministic() {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 400,
        ..Default::default()
    };
    let a = explore_qlearning(&MatMul::new(4), &lib, &opts).unwrap();
    let b = explore_qlearning(&MatMul::new(4), &lib, &opts).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.log, b.log);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.distinct_configs, b.distinct_configs);
}

#[test]
fn agent_seed_changes_trajectory_but_not_environment_truth() {
    let lib = OperatorLibrary::evoapprox();
    let mk = |seed| ExploreOptions {
        max_steps: 400,
        seed,
        ..Default::default()
    };
    let a = explore_qlearning(&MatMul::new(4), &lib, &mk(1)).unwrap();
    let b = explore_qlearning(&MatMul::new(4), &lib, &mk(2)).unwrap();
    assert_ne!(
        a.trace, b.trace,
        "different agent seeds must explore differently"
    );
    // The environment's ground truth is shared: any configuration evaluated
    // by both runs has identical metrics.
    let bm: std::collections::HashMap<_, _> = b.evaluator.evaluated().into_iter().collect();
    for (config, metrics) in a.evaluator.evaluated() {
        if let Some(other) = bm.get(&config) {
            assert_eq!(&metrics, other, "metrics diverged for {config}");
        }
    }
}

#[test]
fn rayon_sweep_is_byte_identical_to_sequential() {
    // The parallel engine's contract: fanning seeds out over the shared
    // cache changes cost, never results. Eight seeds, both paths, one
    // summary — compared field by field through `PartialEq`.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 200,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let seq = sweep_seeds(&wl, &lib, &opts, AgentKind::QLearning, 8).unwrap();
    let par = sweep_seeds_parallel(&wl, &lib, &opts, AgentKind::QLearning, 8).unwrap();
    assert_eq!(seq, par);
}

#[test]
fn shared_cache_does_not_change_exploration_results() {
    // A cache-sharing exploration must trace exactly like a stand-alone
    // one — the cache only short-circuits re-execution of deterministic
    // evaluations.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 300,
        ..Default::default()
    };
    let solo = explore_qlearning(&MatMul::new(4), &lib, &opts).unwrap();

    let cache = SharedCache::new();
    let ctx = EvalContext::with_cache(
        &MatMul::new(4),
        Arc::new(lib.clone()),
        opts.input_seed,
        Arc::clone(&cache),
    )
    .unwrap();
    // Warm the cache with a different-seed run, then replay the original.
    let warm_opts = ExploreOptions { seed: 99, ..opts };
    explore_in_context(&ctx, &warm_opts, AgentKind::QLearning).unwrap();
    let cached = explore_in_context(&ctx, &opts, AgentKind::QLearning).unwrap();

    assert_eq!(solo.trace, cached.trace);
    assert_eq!(solo.summary, cached.summary);
    assert!(
        cached.evaluator.shared_cache_hits() > 0,
        "the replay must actually reuse designs from the warm cache"
    );
}

#[test]
fn input_seed_changes_reference_outputs() {
    let lib = OperatorLibrary::evoapprox();
    let mk = |input_seed| ExploreOptions {
        max_steps: 50,
        input_seed,
        ..Default::default()
    };
    let a = explore_qlearning(&MatMul::new(4), &lib, &mk(1)).unwrap();
    let b = explore_qlearning(&MatMul::new(4), &lib, &mk(2)).unwrap();
    // Different matrices -> different precise power is identical (op count
    // fixed) but accuracy thresholds differ.
    assert_ne!(a.thresholds.acc_th, b.thresholds.acc_th);
    assert_eq!(a.thresholds.power_th, b.thresholds.power_th);
}
