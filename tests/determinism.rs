//! Seed-determinism across the whole stack.
//!
//! Every random choice in the workspace flows from explicit seeds; identical
//! seeds must give bit-identical results at every layer, or the paper's
//! experiments would not be reproducible run to run.

use axdse_suite::ax_dse::campaign::{Campaign, SeedRange};
use axdse_suite::ax_dse::evaluator::{EvalContext, SharedCache};
use axdse_suite::ax_dse::explore::AgentKind;
use axdse_suite::ax_dse::explore::{ExplorationOutcome, ExploreOptions};
use axdse_suite::ax_dse::sweep::SweepSummary;
use axdse_suite::ax_operators::{
    characterize_multiplier, BitWidth, CharacterizeMode, MulKind, MulModel, OperatorLibrary,
};
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::Workload;
use std::sync::Arc;

/// One exact exploration through the campaign primitive (the removed
/// `explore_qlearning`/`explore_with_agent` wrappers, inlined).
fn explore_exact(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
    kind: AgentKind,
) -> ExplorationOutcome {
    let ctx = EvalContext::new(workload, Arc::new(lib.clone()), opts.input_seed).unwrap();
    axdse_suite::ax_dse::campaign::explore(&ctx, opts, kind)
}

/// A 1-benchmark × 1-agent × N-seed campaign summary (the removed
/// `sweep_seeds`/`sweep_seeds_parallel` wrappers, inlined).
fn sweep(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
    kind: AgentKind,
    seeds: u64,
    sequential: bool,
) -> SweepSummary {
    Campaign::new("determinism-sweep", lib)
        .benchmark(workload)
        .agent(kind)
        .seeds(SeedRange::new(0, seeds))
        .options(*opts)
        .sequential(sequential)
        .run()
        .unwrap()
        .cells
        .into_iter()
        .next()
        .expect("one cell")
        .summary
}

#[test]
fn workload_inputs_are_seed_deterministic() {
    {
        let (a, b) = (MatMul::new(6).inputs(9), MatMul::new(6).inputs(9));
        assert_eq!(a, b);
    }
    assert_eq!(Fir::new(40).inputs(3), Fir::new(40).inputs(3));
    assert_ne!(Fir::new(40).inputs(3), Fir::new(40).inputs(4));
}

#[test]
fn monte_carlo_characterisation_is_deterministic() {
    let m = MulModel::new(MulKind::Drum { k: 6 }, BitWidth::W32);
    let mode = CharacterizeMode::MonteCarlo {
        samples: 200_000,
        seed: 5,
    };
    assert_eq!(
        characterize_multiplier(&m, mode),
        characterize_multiplier(&m, mode)
    );
}

#[test]
fn neighborhood_batching_preserves_trajectories() {
    // Evaluating the whole action neighbourhood per step through
    // `evaluate_batch` must not change what the agent observes: identical
    // trajectories, logs and summaries — only the evaluation pattern
    // differs. (ROADMAP follow-up: batch whole action-neighbourhoods
    // through the env step loop.)
    let lib = OperatorLibrary::evoapprox();
    let plain = ExploreOptions {
        max_steps: 300,
        ..Default::default()
    };
    let batched = ExploreOptions {
        batch_neighborhood: true,
        ..plain
    };
    for wl in [MatMul::new(4), MatMul::new(6)] {
        let a = explore_exact(&wl, &lib, &plain, AgentKind::QLearning);
        let b = explore_exact(&wl, &lib, &batched, AgentKind::QLearning);
        assert_eq!(a.trace, b.trace, "{}", wl.name());
        assert_eq!(a.log, b.log, "{}", wl.name());
        assert_eq!(a.summary, b.summary, "{}", wl.name());
        // The batched run speculatively evaluates whole neighbourhoods,
        // so it knows at least as many distinct designs.
        assert!(b.distinct_configs >= a.distinct_configs, "{}", wl.name());
    }
}

#[test]
fn surrogate_always_fallback_sweep_matches_exact_sweep() {
    use axdse_suite::ax_surrogate::{sweep_in_context_surrogate, SurrogateSettings};
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 150,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let exact = sweep(&wl, &lib, &opts, AgentKind::QLearning, 3, true);
    let ctx = EvalContext::with_cache(
        &wl,
        Arc::new(lib.clone()),
        opts.input_seed,
        SharedCache::new(),
    )
    .unwrap();
    let tiered = sweep_in_context_surrogate(
        &ctx,
        &opts,
        AgentKind::QLearning,
        3,
        SurrogateSettings::always_fallback(),
    );
    assert_eq!(exact, tiered.summary);
}

#[test]
fn full_exploration_is_deterministic() {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 400,
        ..Default::default()
    };
    let a = explore_exact(&MatMul::new(4), &lib, &opts, AgentKind::QLearning);
    let b = explore_exact(&MatMul::new(4), &lib, &opts, AgentKind::QLearning);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.log, b.log);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.distinct_configs, b.distinct_configs);
}

#[test]
fn agent_seed_changes_trajectory_but_not_environment_truth() {
    let lib = OperatorLibrary::evoapprox();
    let mk = |seed| ExploreOptions {
        max_steps: 400,
        seed,
        ..Default::default()
    };
    let a = explore_exact(&MatMul::new(4), &lib, &mk(1), AgentKind::QLearning);
    let b = explore_exact(&MatMul::new(4), &lib, &mk(2), AgentKind::QLearning);
    assert_ne!(
        a.trace, b.trace,
        "different agent seeds must explore differently"
    );
    // The environment's ground truth is shared: any configuration evaluated
    // by both runs has identical metrics.
    let bm: std::collections::HashMap<_, _> = b.evaluator.evaluated().into_iter().collect();
    for (config, metrics) in a.evaluator.evaluated() {
        if let Some(other) = bm.get(&config) {
            assert_eq!(&metrics, other, "metrics diverged for {config}");
        }
    }
}

#[test]
fn rayon_sweep_is_byte_identical_to_sequential() {
    // The parallel engine's contract: fanning seeds out over the shared
    // cache changes cost, never results. Eight seeds, both paths, one
    // summary — compared field by field through `PartialEq`.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 200,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let seq = sweep(&wl, &lib, &opts, AgentKind::QLearning, 8, true);
    let par = sweep(&wl, &lib, &opts, AgentKind::QLearning, 8, false);
    assert_eq!(seq, par);
}

#[test]
fn shared_cache_does_not_change_exploration_results() {
    // A cache-sharing exploration must trace exactly like a stand-alone
    // one — the cache only short-circuits re-execution of deterministic
    // evaluations.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 300,
        ..Default::default()
    };
    let solo = explore_exact(&MatMul::new(4), &lib, &opts, AgentKind::QLearning);

    let cache = SharedCache::new();
    let ctx = EvalContext::with_cache(
        &MatMul::new(4),
        Arc::new(lib.clone()),
        opts.input_seed,
        Arc::clone(&cache),
    )
    .unwrap();
    // Warm the cache with a different-seed run, then replay the original.
    let warm_opts = ExploreOptions { seed: 99, ..opts };
    axdse_suite::ax_dse::campaign::explore(&ctx, &warm_opts, AgentKind::QLearning);
    let cached = axdse_suite::ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);

    assert_eq!(solo.trace, cached.trace);
    assert_eq!(solo.summary, cached.summary);
    assert!(
        cached.evaluator.shared_cache_hits() > 0,
        "the replay must actually reuse designs from the warm cache"
    );
}

#[test]
fn input_seed_changes_reference_outputs() {
    let lib = OperatorLibrary::evoapprox();
    let mk = |input_seed| ExploreOptions {
        max_steps: 50,
        input_seed,
        ..Default::default()
    };
    let a = explore_exact(&MatMul::new(4), &lib, &mk(1), AgentKind::QLearning);
    let b = explore_exact(&MatMul::new(4), &lib, &mk(2), AgentKind::QLearning);
    // Different matrices -> different precise power is identical (op count
    // fixed) but accuracy thresholds differ.
    assert_ne!(a.thresholds.acc_th, b.thresholds.acc_th);
    assert_eq!(a.thresholds.power_th, b.thresholds.power_th);
}

// ---------------------------------------------------------------------------
// Campaign equivalence: the `Campaign` driver must match a hand-rolled
// reimplementation of the original pre-campaign code path (what the removed
// legacy wrappers pinned before 0.2).
// ---------------------------------------------------------------------------

#[test]
fn campaign_exact_sweep_is_byte_identical_to_legacy() {
    use axdse_suite::ax_dse::sweep::summarize_outcomes;

    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 200,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let seeds = 6u64;

    // The pre-campaign reference: one shared-cache context, one exploration
    // per seed, aggregated — exactly what `sweep_seeds` used to inline.
    let ctx = EvalContext::with_cache(
        &wl,
        Arc::new(lib.clone()),
        opts.input_seed,
        SharedCache::new(),
    )
    .unwrap();
    let outcomes: Vec<_> = (0..seeds)
        .map(|seed| {
            let run_opts = ExploreOptions { seed, ..opts };
            axdse_suite::ax_dse::campaign::explore(&ctx, &run_opts, AgentKind::QLearning)
        })
        .collect();
    let reference = summarize_outcomes(ctx.benchmark().to_owned(), &outcomes);

    // The campaign path.
    let report = Campaign::new("equivalence", &lib)
        .benchmark(&wl)
        .agent(AgentKind::QLearning)
        .seeds(SeedRange::new(0, seeds))
        .options(opts)
        .run()
        .unwrap();
    assert_eq!(report.cells[0].summary, reference);

    // And both execution modes of the campaign itself.
    let seq = sweep(&wl, &lib, &opts, AgentKind::QLearning, seeds, true);
    let par = sweep(&wl, &lib, &opts, AgentKind::QLearning, seeds, false);
    assert_eq!(seq, reference);
    assert_eq!(par, reference);
}

#[test]
fn campaign_portfolio_is_byte_identical_to_legacy_race() {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 150,
        seed: 3,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let kinds = [AgentKind::QLearning, AgentKind::Sarsa, AgentKind::DoubleQ];

    // Sequential race as the hand-rolled reference; the parallel fan-out
    // must agree entry for entry (bit-exact scores included).
    let legacy = Campaign::new("race", &lib)
        .benchmark(&wl)
        .agents(&kinds)
        .seeds(SeedRange::single(opts.seed))
        .options(opts)
        .sequential(true)
        .run()
        .unwrap()
        .portfolios
        .into_iter()
        .next()
        .expect("one benchmark");
    let report = Campaign::new("race", &lib)
        .benchmark(&wl)
        .agents(&kinds)
        .seeds(SeedRange::single(opts.seed))
        .options(opts)
        .run()
        .unwrap();
    let campaign = &report.portfolios[0];

    assert_eq!(legacy.benchmark, campaign.benchmark);
    assert_eq!(legacy.best, campaign.best);
    assert_eq!(legacy.shared_distinct, campaign.shared_distinct);
    assert_eq!(legacy.entries.len(), campaign.entries.len());
    for (l, c) in legacy.entries.iter().zip(&campaign.entries) {
        assert_eq!(l.kind, c.kind);
        assert_eq!(l.seed, c.seed);
        assert_eq!(l.summary, c.summary);
        assert_eq!(l.stop_reason, c.stop_reason);
        assert_eq!(l.distinct_configs, c.distinct_configs);
        assert_eq!(l.feasible, c.feasible);
        assert_eq!(l.score.to_bits(), c.score.to_bits(), "{}", l.kind.name());
    }

    // Every raced entry still equals a stand-alone exploration.
    for (kind, entry) in kinds.iter().zip(&campaign.entries) {
        let ctx = EvalContext::new(&wl, Arc::new(lib.clone()), opts.input_seed).unwrap();
        let solo = axdse_suite::ax_dse::campaign::explore(&ctx, &opts, *kind);
        assert_eq!(entry.summary, solo.summary, "{}", kind.name());
    }
}

#[test]
fn campaign_explore_is_context_independent() {
    // `campaign::explore` depends only on the context's inputs (workload,
    // library, input seed) and the options — never on context identity.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 200,
        ..Default::default()
    };
    let ctx = EvalContext::new(&MatMul::new(4), Arc::new(lib.clone()), opts.input_seed).unwrap();
    let a = axdse_suite::ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);
    let ctx2 = EvalContext::new(&MatMul::new(4), Arc::new(lib.clone()), opts.input_seed).unwrap();
    let b = axdse_suite::ax_dse::campaign::explore(&ctx2, &opts, AgentKind::QLearning);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.log, b.log);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.distinct_configs, b.distinct_configs);
}

#[test]
fn experiment_specs_round_trip_through_json() {
    use axdse_suite::ax_dse::campaign::{
        BackendSpec, BenchmarkSpec, ExperimentSpec, SeedRange, SurrogateSettings,
    };

    let spec = ExperimentSpec::new("round-trip")
        .benchmark(BenchmarkSpec::MatMul(10))
        .benchmark(BenchmarkSpec::Fir(100))
        .agent(AgentKind::QLearning)
        .agent(AgentKind::QLambda { lambda: 0.7 })
        .seeds(SeedRange::new(2, 4))
        .explore(ExploreOptions {
            max_steps: 777,
            input_seed: 5,
            ..Default::default()
        })
        .backend(BackendSpec::Tiered(SurrogateSettings {
            warmup: 10,
            ..Default::default()
        }))
        .budget(9_999)
        .parallelism(2);
    let text = spec.to_json_string();
    assert_eq!(ExperimentSpec::from_json_str(&text).unwrap(), spec);

    // The checked-in example spec parses, validates and round-trips too.
    let checked_in = std::fs::read_to_string("examples/campaign_matmul.json").unwrap();
    let example = ExperimentSpec::from_json_str(&checked_in).unwrap();
    assert!(example.benchmarks.len() >= 2, "multi-benchmark");
    assert!(example.agents.len() >= 2, "multi-agent");
    assert!(example.budget.is_some(), "global budget");
    assert_eq!(
        ExperimentSpec::from_json_str(&example.to_json_string()).unwrap(),
        example
    );
}

#[test]
fn scalarised_campaign_reports_are_byte_identical_run_to_run() {
    use axdse_suite::ax_dse::campaign::Ranking;
    // The pre-multi-objective pin: a scalar campaign serialises to the
    // same bytes run after run — and spelling out today's default
    // `Ranking::Scalarised` explicitly changes nothing.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 150,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let run = |explicit_ranking: bool| {
        let mut c = Campaign::new("scalar-pin", &lib)
            .benchmark(&wl)
            .agent(AgentKind::QLearning)
            .agent(AgentKind::Sarsa)
            .seeds(SeedRange::new(0, 2))
            .options(opts);
        if explicit_ranking {
            c = c.ranking(Ranking::Scalarised);
        }
        c.run().unwrap().to_json_string()
    };
    let a = run(false);
    assert_eq!(a, run(false), "same campaign twice, same bytes");
    assert_eq!(a, run(true), "explicit scalarised ranking is the default");
    // Schema growth is tagged, not silent: consumers can tell a schema
    // change from byte drift.
    assert!(a.contains("\"report_version\": 2"));
    assert!(a.contains("\"pareto\""));
}

#[test]
fn pareto_example_spec_parses_validates_and_round_trips() {
    use axdse_suite::ax_dse::campaign::{ExperimentSpec, LibrarySpec, Ranking};
    let text = std::fs::read_to_string("examples/campaign_pareto.json").unwrap();
    let spec = ExperimentSpec::from_json_str(&text).unwrap();
    assert_eq!(spec.ranking, Ranking::Pareto);
    assert_eq!(spec.library, LibrarySpec::EvoApproxExtended);
    assert_eq!(spec.objectives.len(), 2);
    assert_eq!(spec.input_seeds, vec![42, 43]);
    assert!(spec.benchmarks.len() >= 2, "multi-benchmark front");
    assert_eq!(
        ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap(),
        spec
    );
}

#[test]
fn shared_cache_persistence_round_trips_through_disk() {
    // Fill a cache through a real exploration, save it, load it in a
    // "second process" and verify a replay answers from the loaded cache
    // with bit-identical results.
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions {
        max_steps: 200,
        ..Default::default()
    };
    let wl = MatMul::new(4);
    let cache = SharedCache::new();
    let ctx = EvalContext::with_cache(
        &wl,
        Arc::new(lib.clone()),
        opts.input_seed,
        Arc::clone(&cache),
    )
    .unwrap();
    let first = axdse_suite::ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);
    let path = std::env::temp_dir().join("ax_dse_determinism_cache.json");
    cache.save(&path).unwrap();

    let loaded = SharedCache::load(&path).unwrap();
    assert_eq!(loaded.len(), cache.len());
    let ctx2 =
        EvalContext::with_cache(&wl, Arc::new(lib.clone()), opts.input_seed, loaded).unwrap();
    let replay = axdse_suite::ax_dse::campaign::explore(&ctx2, &opts, AgentKind::QLearning);
    assert_eq!(first.trace, replay.trace);
    assert_eq!(first.summary, replay.summary);
    assert_eq!(
        replay.evaluator.executions(),
        0,
        "every design must come from the loaded cache"
    );
    let _ = std::fs::remove_file(path);
}
