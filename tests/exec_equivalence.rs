//! Compiled-vs-interpreter differential tests across the whole stack.
//!
//! The threaded-code engine (`CompiledProgram`, the default
//! `ExecEngine::Compiled`) is a performance substrate only: every result
//! it produces must be bit-identical to the interpreter reference, from
//! raw workload batches up through backend metrics and whole campaigns.
//! These tests pin that contract at each layer.

use axdse_suite::ax_dse::config::AxConfig;
use axdse_suite::ax_dse::{EvalContext, ExecEngine};
use axdse_suite::ax_operators::{AdderId, MulId, OperatorLibrary};
use axdse_suite::ax_vm::VarMask;
use axdse_suite::ax_workloads::conv2d::Conv2d;
use axdse_suite::ax_workloads::dct::Dct8;
use axdse_suite::ax_workloads::dot::DotProduct;
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::sobel::Sobel;
use axdse_suite::ax_workloads::Workload;
use proptest::prelude::*;
use std::sync::Arc;

/// One small instance of every workload in the suite.
fn workload_for(ix: usize) -> Box<dyn Workload> {
    match ix {
        0 => Box::new(MatMul::new(3)),
        1 => Box::new(Fir::new(16)),
        2 => Box::new(DotProduct::new(8)),
        3 => Box::new(Conv2d::new(4)),
        4 => Box::new(Sobel::new(4)),
        _ => Box::new(Dct8::new(1)),
    }
}

const N_WORKLOADS: usize = 6;

#[test]
fn batched_engine_matches_interpreter_on_every_workload() {
    let lib = OperatorLibrary::evoapprox();
    for ix in 0..N_WORKLOADS {
        let wl = workload_for(ix);
        let prepared = wl.prepare(7).unwrap();
        let n_vars = VarMask::none(&prepared.program).len();
        let full = (1u64 << n_vars.min(63)) - 1;
        let n_add = lib.adders(prepared.program.add_width()).len();
        let n_mul = lib.multipliers(prepared.program.mul_width()).len();
        let bit_patterns = [0, 1 & full, full / 2 + 1, full];

        // Mask-major order: long runs of equal selection bits, so the
        // batcher forms large groups and its dedup/factoring paths fire.
        let mut mask_major = Vec::new();
        for bits in bit_patterns {
            for a in 0..n_add {
                for m in 0..n_mul {
                    mask_major.push((AdderId(a), MulId(m), bits));
                }
            }
        }
        // Operator-major order: selection bits alternate, so every group
        // degenerates to a singleton and the batcher must regroup.
        let mut op_major = Vec::new();
        for a in 0..n_add {
            for m in 0..n_mul {
                for bits in bit_patterns {
                    op_major.push((AdderId(a), MulId(m), bits));
                }
            }
        }
        for configs in [&mask_major, &op_major] {
            let compiled = prepared.run_batch(&lib, configs).unwrap();
            let interpreted = prepared.run_batch_interpreted(&lib, configs).unwrap();
            assert_eq!(compiled, interpreted, "workload {}", wl.name());
        }
    }
}

#[test]
fn backend_engines_agree_on_metrics() {
    // The same designs through `Evaluator` on both engines: per-design
    // `evaluate` and neighbourhood `evaluate_batch` must return the same
    // metrics bit for bit (they feed reward shaping, so an ULP of drift
    // would fork agent trajectories).
    let lib = Arc::new(OperatorLibrary::evoapprox());
    let wl = MatMul::new(4);
    let ctx = EvalContext::new(&wl, Arc::clone(&lib), 3).unwrap();
    let ctx_int = ctx.clone().with_engine(ExecEngine::Interpreter);
    assert_eq!(
        ctx.engine(),
        ExecEngine::Compiled,
        "compiled is the default"
    );
    let mut compiled = ctx.evaluator();
    let mut interpreted = ctx_int.evaluator();
    let dims = compiled.dims();
    let full = (1u64 << dims.n_vars.min(63)) - 1;

    let mut configs = Vec::new();
    for a in 0..dims.n_add {
        for m in 0..dims.n_mul {
            for vars in [0, full / 3, full] {
                configs.push(AxConfig {
                    adder: AdderId(a),
                    mul: MulId(m),
                    vars,
                });
            }
        }
    }
    for config in &configs {
        let c = compiled.evaluate(config).unwrap();
        let i = interpreted.evaluate(config).unwrap();
        assert_eq!(c, i, "{config}");
    }
    // Fresh evaluators, batch path: nothing answered from the per-design
    // caches above.
    let mut compiled = ctx.evaluator();
    let mut interpreted = ctx_int.evaluator();
    assert_eq!(
        compiled.evaluate_batch(&configs).unwrap(),
        interpreted.evaluate_batch(&configs).unwrap()
    );
}

#[test]
fn exact_and_interpreted_campaigns_agree() {
    // Whole-campaign determinism: a spec pinned to the interpreter
    // reference (`"exact-interpreted"`) must reproduce the compiled
    // engine's sweep exactly — same trajectories, same summaries.
    use axdse_suite::ax_dse::campaign::{
        BackendSpec, BenchmarkSpec, ExperimentSpec, NullObserver, SeedRange,
    };
    use axdse_suite::ax_dse::explore::{AgentKind, ExploreOptions};
    use axdse_suite::ax_surrogate::run_spec;

    let lib = OperatorLibrary::evoapprox();
    let mk = |backend| {
        ExperimentSpec::new("engine-equivalence")
            .benchmark(BenchmarkSpec::MatMul(4))
            .benchmark(BenchmarkSpec::Dot(8))
            .agent(AgentKind::QLearning)
            .agent(AgentKind::Sarsa)
            .seeds(SeedRange::new(0, 2))
            .explore(ExploreOptions {
                max_steps: 150,
                ..Default::default()
            })
            .backend(backend)
    };
    let compiled = run_spec(&lib, &mk(BackendSpec::Exact), None, &NullObserver).unwrap();
    let interpreted = run_spec(
        &lib,
        &mk(BackendSpec::ExactInterpreted),
        None,
        &NullObserver,
    )
    .unwrap();
    assert_eq!(compiled.cells.len(), interpreted.cells.len());
    for (c, i) in compiled.cells.iter().zip(&interpreted.cells) {
        assert_eq!(c.benchmark, i.benchmark);
        assert_eq!(c.summary, i.summary, "{}", c.benchmark);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary config slices through `run_batch` and
    /// `run_batch_interpreted` are byte-identical on every workload —
    /// outputs and arithmetic profiles both.
    #[test]
    fn compiled_batches_match_interpreter(
        wl_ix in 0usize..N_WORKLOADS,
        input_seed in 0u64..4,
        raw in prop::collection::vec((0usize..16, 0usize..16, 0u64..u64::MAX), 1..12),
    ) {
        let lib = OperatorLibrary::evoapprox();
        let wl = workload_for(wl_ix);
        let prepared = wl.prepare(input_seed).unwrap();
        let n_vars = VarMask::none(&prepared.program).len();
        let n_add = lib.adders(prepared.program.add_width()).len();
        let n_mul = lib.multipliers(prepared.program.mul_width()).len();
        let configs: Vec<_> = raw
            .iter()
            .map(|&(a, m, bits)| {
                (
                    AdderId(a % n_add),
                    MulId(m % n_mul),
                    bits & ((1u64 << n_vars.min(63)) - 1),
                )
            })
            .collect();
        let compiled = prepared.run_batch(&lib, &configs).unwrap();
        let interpreted = prepared.run_batch_interpreted(&lib, &configs).unwrap();
        prop_assert_eq!(compiled, interpreted, "workload {}", wl.name());
    }
}
