//! The classic DSE baselines on the real configuration space.

use axdse_suite::ax_agents::search::{
    genetic_algorithm, hill_climb, random_search, simulated_annealing, AnnealingOptions,
    GeneticOptions,
};
use axdse_suite::ax_dse::config::AxConfig;
use axdse_suite::ax_dse::search_adapter::DseSearchSpace;
use axdse_suite::ax_dse::thresholds::ThresholdRule;
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::OperatorLibrary;
use axdse_suite::ax_workloads::matmul::MatMul;

/// Exhaustive optimum of the scalarised objective on a small space.
fn exhaustive_best(
    evaluator: &mut Evaluator,
    th: axdse_suite::ax_dse::thresholds::Thresholds,
) -> f64 {
    let dims = evaluator.dims();
    let mut best = f64::NEG_INFINITY;
    let scores: Vec<f64> = AxConfig::enumerate(dims)
        .iter()
        .map(|c| {
            let m = evaluator.evaluate(c).unwrap();
            if m.delta_acc <= th.acc_th {
                m.delta_power / evaluator.precise_power() + m.delta_time / evaluator.precise_time()
            } else {
                -(m.delta_acc / th.acc_th)
            }
        })
        .collect();
    for s in scores {
        best = best.max(s);
    }
    best
}

#[test]
fn all_baselines_approach_the_exhaustive_optimum() {
    let lib = OperatorLibrary::evoapprox();
    let mut reference = Evaluator::new(&MatMul::new(5), &lib, 11).unwrap();
    let th = ThresholdRule::paper().calibrate(&reference);
    let optimum = exhaustive_best(&mut reference, th);
    assert!(optimum > 0.0, "the space must contain feasible gains");

    let run = |name: &str, f: &dyn Fn(&mut DseSearchSpace<'_>) -> f64| {
        let mut ev = Evaluator::new(&MatMul::new(5), &lib, 11).unwrap();
        let th = ThresholdRule::paper().calibrate(&ev);
        let best = {
            let mut space = DseSearchSpace::new(&mut ev, th);
            f(&mut space)
        };
        assert!(
            best >= 0.7 * optimum,
            "{name}: best {best:.4} too far from optimum {optimum:.4}"
        );
        best
    };

    run("random", &|sp| random_search(sp, 400, 3).best_score);
    run("hill-climb", &|sp| hill_climb(sp, 400, 24, 3).best_score);
    run("sim-anneal", &|sp| {
        simulated_annealing(
            sp,
            AnnealingOptions {
                budget: 400,
                t_initial: 0.5,
                t_final: 0.01,
                seed: 3,
            },
        )
        .best_score
    });
    run("genetic", &|sp| {
        genetic_algorithm(
            sp,
            GeneticOptions {
                population: 20,
                generations: 20,
                seed: 3,
                ..Default::default()
            },
        )
        .best_score
    });
}

#[test]
fn guided_search_beats_random_at_tiny_budget() {
    // With a 60-evaluation budget on the 576-point space, hill climbing's
    // locality should (at this seed) at least match random sampling.
    let lib = OperatorLibrary::evoapprox();
    let score = |f: &dyn Fn(&mut DseSearchSpace<'_>) -> f64| {
        let mut ev = Evaluator::new(&MatMul::new(5), &lib, 11).unwrap();
        let th = ThresholdRule::paper().calibrate(&ev);
        let mut space = DseSearchSpace::new(&mut ev, th);
        f(&mut space)
    };
    let random = score(&|sp| random_search(sp, 60, 7).best_score);
    let hc = score(&|sp| hill_climb(sp, 60, 16, 7).best_score);
    assert!(hc >= random - 1e-9, "hill-climb {hc} vs random {random}");
}

#[test]
fn search_history_is_anytime_monotone() {
    let lib = OperatorLibrary::evoapprox();
    let mut ev = Evaluator::new(&MatMul::new(4), &lib, 5).unwrap();
    let th = ThresholdRule::paper().calibrate(&ev);
    let mut space = DseSearchSpace::new(&mut ev, th);
    let out = simulated_annealing(
        &mut space,
        AnnealingOptions {
            budget: 200,
            t_initial: 1.0,
            t_final: 0.05,
            seed: 2,
        },
    );
    for w in out.history.windows(2) {
        assert!(w[1] >= w[0]);
    }
    assert_eq!(out.history.len() as u64, out.evaluations);
}
