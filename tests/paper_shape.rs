//! Pinning the reproduced paper's qualitative results.
//!
//! These tests encode what the paper's evaluation section *shows*, rather
//! than internal invariants: the reward landscape that makes MatMul learnable
//! and FIR hard, the operator selections, and the learning-curve shapes of
//! Figures 2–4. They run on the default (seeded) configuration, so they are
//! deterministic.

use axdse_suite::ax_agents::train::StopReason;
use axdse_suite::ax_dse::analysis::{linear_trend, reward_curve};
use axdse_suite::ax_dse::backend::EvalContext;
use axdse_suite::ax_dse::config::AxConfig;
use axdse_suite::ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use axdse_suite::ax_dse::reward::{reward, RewardParams};
use axdse_suite::ax_dse::thresholds::ThresholdRule;
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::OperatorLibrary;
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::Workload;

fn lib() -> OperatorLibrary {
    OperatorLibrary::evoapprox()
}

/// The paper's Q-learning exploration through the campaign primitive.
fn explore_qlearning(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
) -> ExplorationOutcome {
    let ctx = EvalContext::new(workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark builds against the library");
    axdse_suite::ax_dse::campaign::explore(&ctx, opts, AgentKind::QLearning)
}

/// Classify every configuration of a benchmark by Algorithm 1 branch.
fn landscape(workload: &dyn Workload) -> (u32, u32, u32, u32) {
    let l = lib();
    let mut ev = Evaluator::new(workload, &l, 42).unwrap();
    let th = ThresholdRule::paper().calibrate(&ev);
    let params = RewardParams::new(100.0, th);
    let dims = ev.dims();
    let (mut plus, mut minus, mut violate, mut terminal) = (0, 0, 0, 0);
    for c in AxConfig::enumerate(dims) {
        let m = ev.evaluate(&c).unwrap();
        match reward(&c, dims, &m, &params) {
            (_, true) => terminal += 1,
            (r, _) if r > 0.5 => plus += 1,
            (r, _) if r < -1.5 => violate += 1,
            _ => minus += 1,
        }
    }
    (plus, minus, violate, terminal)
}

/// MatMul has a substantial +1 region (the paper's agent learns there) and
/// no reachable terminate state (the paper's matmul runs ended on the
/// cumulative-reward rule with non-extreme solutions).
#[test]
fn matmul_landscape_supports_learning() {
    let (plus, _minus, violate, terminal) = landscape(&MatMul::new(10));
    assert!(plus >= 30, "too few +1 configurations: {plus}");
    assert!(violate > 0, "accuracy violations must exist");
    assert_eq!(
        terminal, 0,
        "fully-approximate matmul must violate accuracy"
    );
}

/// FIR's +1 region is much thinner relative to its violation region — the
/// paper's FIR agent "struggles".
#[test]
fn fir_landscape_is_harder_than_matmul() {
    let (m_plus, _, m_violate, _) = landscape(&MatMul::new(10));
    let (f_plus, _, f_violate, f_terminal) = landscape(&Fir::new(100));
    assert_eq!(f_terminal, 0);
    let matmul_ratio = m_plus as f64 / (m_violate.max(1)) as f64;
    let fir_ratio = f_plus as f64 / (f_violate.max(1)) as f64;
    assert!(
        fir_ratio < matmul_ratio,
        "FIR should be harder: fir {fir_ratio:.2} vs matmul {matmul_ratio:.2}"
    );
}

/// The default MatMul 10×10 exploration reaches the cumulative-reward target
/// mid-exploration (the paper stops at ~2 000 of 10 000 steps) and selects
/// the paper's multiplier (17MJ — the only one that clears the 50 % time
/// threshold on its own).
#[test]
fn matmul10_exploration_matches_paper_shape() {
    let o = explore_qlearning(&MatMul::new(10), &lib(), &ExploreOptions::default());
    assert_eq!(
        o.stop_reason,
        StopReason::RewardTarget,
        "expected early stop"
    );
    assert!(
        o.summary.steps > 200 && o.summary.steps < 9_000,
        "stop step {} outside the paper-like band",
        o.summary.steps
    );
    assert_eq!(
        o.summary.mul_name, "17MJ",
        "paper's matmul solutions use 17MJ"
    );
    // Solution respects all constraints (the paper's headline claim).
    let th = o.thresholds;
    let last = o.trace.last().unwrap().metrics;
    assert!(last.delta_acc <= th.acc_th);
    assert!(last.delta_power >= th.power_th);
    assert!(last.delta_time >= th.time_th);
}

/// The MatMul reward curve improves over the exploration (Figure 4's
/// "continuously improves" observation): the trend of the 100-step mean
/// reward is positive, and the final bin beats the first.
#[test]
fn matmul10_reward_curve_improves() {
    let o = explore_qlearning(&MatMul::new(10), &lib(), &ExploreOptions::default());
    let bins = reward_curve(&o.trace, 100);
    assert!(bins.len() >= 3, "need at least 3 bins, got {}", bins.len());
    let (slope, _) = linear_trend(&bins);
    assert!(slope > 0.0, "reward trend should rise, slope {slope}");
    assert!(
        bins.last().unwrap() > bins.first().unwrap(),
        "final bin {:?} should beat first {:?}",
        bins.last(),
        bins.first()
    );
}

/// FIR-100 does not reach the reward target within a 3 000-step budget — the
/// paper's "learning strategy is not entirely effective" observation.
#[test]
fn fir100_struggles_within_short_budget() {
    let opts = ExploreOptions {
        max_steps: 3_000,
        ..Default::default()
    };
    let o = explore_qlearning(&Fir::new(100), &lib(), &opts);
    assert_eq!(o.stop_reason, StopReason::MaxSteps);
    assert!(o.log.total_reward() < 100.0);
}

/// Both FIR solutions in the paper use gentle operators (adders 0GN/067 at
/// indices 1/5, multipliers 043/018 at indices 2–3): crucially the *adder*
/// of the solution must come from the accurate half of the ladder, because
/// aggressive 16-bit adders destroy the accumulator.
#[test]
fn fir100_solution_avoids_catastrophic_adders() {
    let opts = ExploreOptions {
        max_steps: 3_000,
        ..Default::default()
    };
    let o = explore_qlearning(&Fir::new(100), &lib(), &opts);
    let last = o.trace.last().unwrap();
    assert!(
        last.config.adder.0 <= 3,
        "solution adder {} is in the catastrophic half",
        o.summary.adder_name
    );
}
