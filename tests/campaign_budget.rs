//! Budget-share scheduler contracts: uniform shares degrade to the plain
//! campaign, successive halving respects the global cap and still finds
//! the good designs at a fraction of the evaluation spend, asynchronous
//! halving matches it with no round barrier, and Hyperband's bracket
//! sweep stays under the cap.

use axdse_suite::ax_dse::campaign::{
    BudgetPolicy, Campaign, CampaignReport, HalvingBracket, SeedRange,
};
use axdse_suite::ax_dse::explore::{AgentKind, ExploreOptions};
use axdse_suite::ax_operators::OperatorLibrary;
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use proptest::prelude::*;

fn lib() -> OperatorLibrary {
    OperatorLibrary::evoapprox()
}

fn opts(steps: u64) -> ExploreOptions {
    ExploreOptions {
        max_steps: steps,
        ..Default::default()
    }
}

fn best_score(report: &CampaignReport) -> f64 {
    report
        .cells
        .iter()
        .map(|c| c.best_score)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The scheduler is byte-identical to the pre-policy campaign path when
/// shares never bind: same summaries, same evaluation counts, same
/// portfolio scores.
#[test]
fn uniform_policy_with_full_budget_matches_the_unbudgeted_campaign() {
    let l = lib();
    let (matmul, fir) = (MatMul::new(4), Fir::new(40));
    let agents = [AgentKind::QLearning, AgentKind::Sarsa];
    let run = |budget: Option<u64>| {
        let mut c = Campaign::new("uniform-equivalence", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, 2))
            .options(opts(200));
        if let Some(b) = budget {
            c = c.budget(b).policy(BudgetPolicy::Uniform);
        }
        c.run().unwrap()
    };
    let unbudgeted = run(None);
    let full = run(Some(1_000_000));
    assert_eq!(unbudgeted.cells.len(), full.cells.len());
    for (a, b) in unbudgeted.cells.iter().zip(&full.cells) {
        assert_eq!(a.summary, b.summary, "{}/{}", a.benchmark, a.agent.name());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.stopped_runs, 0);
        assert_eq!(b.stopped_runs, 0);
    }
    for (pa, pb) in unbudgeted.portfolios.iter().zip(&full.portfolios) {
        assert_eq!(pa.best, pb.best);
        for (ea, eb) in pa.entries.iter().zip(&pb.entries) {
            assert_eq!(ea.score, eb.score);
            assert_eq!(ea.summary, eb.summary);
        }
    }
    assert_eq!(unbudgeted.budget.spent, full.budget.spent);
    assert_eq!(full.budget.overshoot, 0, "a non-binding cap never trips");
}

/// The ISSUE acceptance scenario: a successive-halving campaign on
/// MatMul×FIR must find a best design whose reward is within 1 % of the
/// exhaustive (unbounded) run's, while spending at most 60 % of its
/// evaluations. The same comparison is recorded in `BENCH_sweep.json` by
/// `bench_sweep --policy halving:2,0.5`.
#[test]
fn halving_matches_exhaustive_reward_at_a_fraction_of_the_evals() {
    let l = lib();
    let (matmul, fir) = (MatMul::new(6), Fir::new(40));
    let agents = [AgentKind::QLearning, AgentKind::Sarsa];
    let campaign = |budget: Option<u64>, policy: Option<BudgetPolicy>| {
        let mut c = Campaign::new("halving-acceptance", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, 2))
            .options(opts(600));
        if let Some(b) = budget {
            c = c.budget(b);
        }
        if let Some(p) = policy {
            c = c.policy(p);
        }
        c.run().unwrap()
    };

    let exhaustive = campaign(None, None);
    let full_evals = exhaustive.budget.spent;
    let full_best = best_score(&exhaustive);
    assert!(full_evals > 0 && full_best.is_finite());

    let budget = full_evals * 55 / 100;
    let halved = campaign(
        Some(budget),
        Some(BudgetPolicy::SuccessiveHalving {
            rounds: 2,
            keep_fraction: 0.5,
        }),
    );
    let spent = halved.budget.charged();
    assert!(
        spent <= full_evals * 60 / 100,
        "halving spent {spent} of the exhaustive {full_evals} — over the 60% contract"
    );
    let halved_best = best_score(&halved);
    assert!(
        full_best - halved_best <= 0.01 * full_best.abs(),
        "halving best reward {halved_best} trails the exhaustive {full_best} by more than 1%"
    );
    assert_eq!(halved.allocations.len(), 2, "both rounds recorded");
}

/// The ISSUE 5 acceptance scenario: on the same MatMul×FIR grid and the
/// same ≈55 % budget, ASHA must still reach the exhaustive run's best
/// score while spending no more evaluations than synchronous successive
/// halving does — the round barrier buys nothing. The same comparison is
/// recorded in `BENCH_sweep.json` by `bench_sweep --policy asha:2,0.5`.
#[test]
fn asha_reaches_the_exhaustive_best_within_the_sync_halving_evals() {
    let l = lib();
    let (matmul, fir) = (MatMul::new(6), Fir::new(40));
    let agents = [AgentKind::QLearning, AgentKind::Sarsa];
    let campaign = |budget: Option<u64>, policy: Option<BudgetPolicy>| {
        let mut c = Campaign::new("asha-acceptance", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, 2))
            .options(opts(600));
        if let Some(b) = budget {
            c = c.budget(b);
        }
        if let Some(p) = policy {
            c = c.policy(p);
        }
        c.run().unwrap()
    };

    let exhaustive = campaign(None, None);
    let full_evals = exhaustive.budget.spent;
    let full_best = best_score(&exhaustive);
    assert!(full_evals > 0 && full_best.is_finite());

    let budget = full_evals * 55 / 100;
    let sync = campaign(
        Some(budget),
        Some(BudgetPolicy::SuccessiveHalving {
            rounds: 2,
            keep_fraction: 0.5,
        }),
    );
    let asha = campaign(
        Some(budget),
        Some(BudgetPolicy::AsyncHalving {
            rungs: 2,
            keep_fraction: 0.5,
        }),
    );
    let (sync_evals, asha_evals) = (sync.budget.charged(), asha.budget.charged());
    assert!(
        asha_evals <= sync_evals,
        "asha spent {asha_evals} evaluations, more than sync halving's {sync_evals}"
    );
    let asha_best = best_score(&asha);
    assert!(
        full_best - asha_best <= 0.01 * full_best.abs(),
        "asha best reward {asha_best} trails the exhaustive {full_best} by more than 1%"
    );
    assert_eq!(asha.allocations.len(), 2, "one report per rung");
}

/// Pinned-seed degeneration: with a single rung there is nothing to
/// promote, so ASHA's rung-0 admission (one even split of the whole cap)
/// and single resume pass are exactly the Uniform policy's — the reports
/// must be byte-identical.
#[test]
fn asha_with_a_single_rung_degenerates_to_the_uniform_path_byte_identically() {
    let l = lib();
    let (matmul, fir) = (MatMul::new(4), Fir::new(40));
    let agents = [AgentKind::QLearning, AgentKind::Sarsa];
    let run = |policy: BudgetPolicy| {
        Campaign::new("asha-degenerate", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .seeds(SeedRange::new(0, 2))
            .options(opts(400))
            .budget(200)
            .policy(policy)
            .sequential(true)
            .run()
            .unwrap()
    };
    let uniform = run(BudgetPolicy::Uniform);
    let asha = run(BudgetPolicy::AsyncHalving {
        rungs: 1,
        keep_fraction: 0.5,
    });
    assert_eq!(uniform.cells.len(), asha.cells.len());
    for (a, b) in uniform.cells.iter().zip(&asha.cells) {
        assert_eq!(a.summary, b.summary, "{}/{}", a.benchmark, a.agent.name());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.stopped_runs, b.stopped_runs);
    }
    for (pa, pb) in uniform.portfolios.iter().zip(&asha.portfolios) {
        assert_eq!(pa.best, pb.best);
        for (ea, eb) in pa.entries.iter().zip(&pb.entries) {
            assert_eq!(ea.score, eb.score);
            assert_eq!(ea.summary, eb.summary);
            assert_eq!(ea.stop_reason, eb.stop_reason);
        }
    }
    assert_eq!(uniform.budget.spent, asha.budget.spent);
    assert_eq!(uniform.budget.overshoot, asha.budget.overshoot);
    // Both record one allocation round with identical grants.
    assert_eq!(uniform.allocations.len(), 1);
    assert_eq!(asha.allocations.len(), 1);
    for (ca, cb) in uniform.allocations[0]
        .cells
        .iter()
        .zip(&asha.allocations[0].cells)
    {
        assert_eq!(ca.granted, cb.granted);
        assert_eq!(ca.spent, cb.spent);
        assert_eq!(ca.survived, cb.survived);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the cap, round count or keep fraction, successive halving
    /// never grants more than the global budget: the clamped spend stays
    /// at or under the cap and the raw overshoot stays within one step
    /// per run.
    #[test]
    fn halving_never_spends_more_than_the_global_cap(
        budget in 8u64..120,
        rounds in 1u32..5,
        keep_pct in 25u32..80,
    ) {
        let l = lib();
        let (matmul, fir) = (MatMul::new(4), Fir::new(40));
        let agents = [AgentKind::QLearning, AgentKind::Sarsa];
        let report = Campaign::new("halving-cap", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .options(opts(2_000))
            .budget(budget)
            .policy(BudgetPolicy::SuccessiveHalving {
                rounds,
                keep_fraction: f64::from(keep_pct) / 100.0,
            })
            .run()
            .unwrap();
        prop_assert!(report.budget.spent <= budget);
        // 4 runs, non-batched stepping: at most one distinct design per
        // run beyond the cap.
        prop_assert!(
            report.budget.overshoot <= 4,
            "overshoot {} exceeds one step per run",
            report.budget.overshoot
        );
        prop_assert!(report.allocations.len() == rounds as usize);
    }

    /// Whatever the cap, rung count or keep fraction, the asynchronous
    /// scheduler's promotions never grant past the global budget: the
    /// clamped spend stays at or under the cap and the raw overshoot
    /// stays within one step per run.
    #[test]
    fn asha_never_spends_more_than_the_global_cap(
        budget in 8u64..120,
        rungs in 1u32..5,
        keep_pct in 25u32..80,
    ) {
        let l = lib();
        let (matmul, fir) = (MatMul::new(4), Fir::new(40));
        let agents = [AgentKind::QLearning, AgentKind::Sarsa];
        let report = Campaign::new("asha-cap", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .options(opts(2_000))
            .budget(budget)
            .policy(BudgetPolicy::AsyncHalving {
                rungs,
                keep_fraction: f64::from(keep_pct) / 100.0,
            })
            .run()
            .unwrap();
        prop_assert!(report.budget.spent <= budget);
        prop_assert!(
            report.budget.overshoot <= 4,
            "overshoot {} exceeds one step per run",
            report.budget.overshoot
        );
        prop_assert!(report.allocations.len() == rungs as usize);
    }

    /// Hyperband's bracket sweep obeys the same hard ceiling, however the
    /// brackets are shaped, and records one allocation report per round of
    /// every bracket.
    #[test]
    fn hyperband_never_spends_more_than_the_global_cap(
        budget in 8u64..120,
        rounds_a in 1u32..4,
        rounds_b in 1u32..3,
        keep_pct in 25u32..80,
    ) {
        let l = lib();
        let (matmul, fir) = (MatMul::new(4), Fir::new(40));
        let agents = [AgentKind::QLearning, AgentKind::Sarsa];
        let keep = f64::from(keep_pct) / 100.0;
        let report = Campaign::new("hyperband-cap", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&agents)
            .options(opts(2_000))
            .budget(budget)
            .policy(BudgetPolicy::Hyperband {
                brackets: vec![
                    HalvingBracket::new(rounds_a, keep),
                    HalvingBracket::new(rounds_b, keep),
                ],
            })
            .run()
            .unwrap();
        prop_assert!(report.budget.spent <= budget);
        prop_assert!(
            report.budget.overshoot <= 4,
            "overshoot {} exceeds one step per run",
            report.budget.overshoot
        );
        prop_assert!(report.allocations.len() == (rounds_a + rounds_b) as usize);
    }
}
