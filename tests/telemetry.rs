//! Telemetry determinism contracts.
//!
//! Events are logical (no wall-clock data, sources are grid indices, not
//! thread ids), so a parallel campaign must produce the same canonical
//! event list as a sequential one; metric counters must agree between the
//! compiled and interpreted exact engines; and turning tracing on must
//! never change what a campaign computes.

use axdse_suite::ax_dse::campaign::{
    BudgetPolicy, Campaign, CampaignReport, EventKind, JsonlSink, SeedRange, Telemetry,
};
use axdse_suite::ax_dse::explore::{AgentKind, ExploreOptions};
use axdse_suite::ax_dse::json::Json;
use axdse_suite::ax_operators::OperatorLibrary;
use axdse_suite::ax_surrogate::run_spec_traced;
use axdse_suite::ax_workloads::fir::Fir;
use axdse_suite::ax_workloads::matmul::MatMul;
use proptest::prelude::*;

fn lib() -> OperatorLibrary {
    OperatorLibrary::evoapprox()
}

fn opts(steps: u64) -> ExploreOptions {
    ExploreOptions {
        max_steps: steps,
        ..Default::default()
    }
}

/// Everything deterministic in a report: the telemetry section is
/// excluded because its histograms carry wall-clock measurements.
fn strip(r: &CampaignReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        r.cells, r.portfolios, r.budget, r.allocations, r.tier
    )
}

/// An unbounded multi-seed campaign run with telemetry, sequentially or
/// through the rayon fan-out.
fn traced_campaign(sequential: bool) -> (CampaignReport, Telemetry) {
    let l = lib();
    let (matmul, fir) = (MatMul::new(4), Fir::new(40));
    let telemetry = Telemetry::new();
    let report = Campaign::new("telemetry-determinism", &l)
        .benchmark(&matmul)
        .benchmark(&fir)
        .agents(&[AgentKind::QLearning, AgentKind::Sarsa])
        .seeds(SeedRange::new(0, 2))
        .options(opts(150))
        .sequential(sequential)
        .telemetry(&telemetry)
        .run()
        .unwrap();
    (report, telemetry)
}

/// With no budget in play, the only schedule freedom is thread
/// interleaving — which must not show in the canonical event list: same
/// events, same sources, same per-source sequence numbers.
#[test]
fn parallel_campaign_emits_the_same_canonical_events_as_sequential() {
    let (seq_report, seq_t) = traced_campaign(true);
    let (par_report, par_t) = traced_campaign(false);
    let seq_events = seq_t.events();
    let par_events = par_t.events();
    assert!(!seq_events.is_empty());
    assert_eq!(seq_events, par_events);
    assert_eq!(strip(&seq_report), strip(&par_report));
    // Counters and gauges are logical too; only the latency histograms
    // may differ between the two modes.
    let (seq_snap, par_snap) = (seq_t.snapshot().unwrap(), par_t.snapshot().unwrap());
    assert_eq!(seq_snap.counters, par_snap.counters);
    assert_eq!(seq_snap.gauges, par_snap.gauges);
}

/// A budgeted campaign's pause points depend on worker interleaving, so
/// cross-mode equality is out of reach — but the *sequential* schedule is
/// fully determined: run twice, get byte-identical events and counters.
#[test]
fn budgeted_sequential_campaigns_are_repeatable() {
    let run = || {
        let l = lib();
        let (matmul, fir) = (MatMul::new(4), Fir::new(40));
        let telemetry = Telemetry::new();
        let report = Campaign::new("telemetry-repeatable", &l)
            .benchmark(&matmul)
            .benchmark(&fir)
            .agents(&[AgentKind::QLearning, AgentKind::Sarsa])
            .seeds(SeedRange::new(0, 2))
            .options(opts(400))
            .budget(300)
            .policy(BudgetPolicy::SuccessiveHalving {
                rounds: 2,
                keep_fraction: 0.5,
            })
            .sequential(true)
            .telemetry(&telemetry)
            .run()
            .unwrap();
        (report, telemetry)
    };
    let (report_a, t_a) = run();
    let (report_b, t_b) = run();
    assert_eq!(t_a.events(), t_b.events());
    let (snap_a, snap_b) = (t_a.snapshot().unwrap(), t_b.snapshot().unwrap());
    assert_eq!(snap_a.counters, snap_b.counters);
    assert_eq!(strip(&report_a), strip(&report_b));
    let summary = report_a.telemetry.expect("enabled telemetry is reported");
    assert!(summary.budget_invariant_ok);
    assert!(summary.events_emitted > 0);
}

/// The compiled and interpreted exact engines must agree on every
/// deterministic counter — cache traffic, budget accounting, backend
/// hit/execution tallies. Only the `engine.*` attribution (which engine
/// ran) and wall-clock histograms may differ.
#[test]
fn compiled_and_interpreted_engines_agree_on_cache_and_budget_metrics() {
    use axdse_suite::ax_dse::campaign::{BackendSpec, BenchmarkSpec, ExperimentSpec, NullObserver};
    let run = |backend: BackendSpec| {
        let spec = ExperimentSpec::new("engine-parity")
            .benchmark(BenchmarkSpec::MatMul(4))
            .agent(AgentKind::QLearning)
            .agent(AgentKind::Sarsa)
            .seeds(SeedRange::new(0, 2))
            .explore(opts(150))
            .backend(backend);
        let telemetry = Telemetry::new();
        run_spec_traced(&lib(), &spec, None, &NullObserver, &telemetry).unwrap();
        telemetry.snapshot().unwrap()
    };
    let compiled = run(BackendSpec::Exact);
    let interpreted = run(BackendSpec::ExactInterpreted);
    let deterministic = |snap: &axdse_suite::ax_dse::campaign::MetricsSnapshot| {
        snap.counters
            .iter()
            .filter(|(name, _)| {
                name.starts_with("cache.")
                    || name.starts_with("budget.")
                    || name.starts_with("backend.")
                    || name.starts_with("campaign.")
            })
            .cloned()
            .collect::<Vec<_>>()
    };
    let (c, i) = (deterministic(&compiled), deterministic(&interpreted));
    assert!(!c.is_empty());
    assert_eq!(c, i);
    // The engine attribution tells the two apart.
    assert!(compiled.counter("engine.compiled_runs").unwrap_or(0) > 0);
    assert!(interpreted.counter("engine.interpreted_runs").unwrap_or(0) > 0);
    assert_eq!(
        compiled.counter("engine.compiled_runs"),
        interpreted.counter("engine.interpreted_runs")
    );
}

/// A parallel budgeted campaign still satisfies the ledger invariant the
/// telemetry summary checks: per-cell spends sum to the global raw spend,
/// which splits into the clamped spend plus the cooperative overshoot.
#[test]
fn parallel_budgeted_campaign_reports_the_budget_invariant() {
    let l = lib();
    let (matmul, fir) = (MatMul::new(4), Fir::new(40));
    let telemetry = Telemetry::new();
    let report = Campaign::new("telemetry-invariant", &l)
        .benchmark(&matmul)
        .benchmark(&fir)
        .agents(&[AgentKind::QLearning, AgentKind::Sarsa])
        .seeds(SeedRange::new(0, 2))
        .options(opts(2_000))
        .budget(120)
        .policy(BudgetPolicy::AsyncHalving {
            rungs: 2,
            keep_fraction: 0.5,
        })
        .telemetry(&telemetry)
        .run()
        .unwrap();
    let summary = report.telemetry.expect("enabled telemetry is reported");
    assert!(summary.budget_invariant_ok);
    let snap = &summary.metrics;
    assert_eq!(
        snap.counter("budget.cells_spent"),
        Some(report.budget.spent + report.budget.overshoot)
    );
    assert_eq!(snap.counter("budget.spent"), Some(report.budget.spent));
}

/// Every JSONL trace line must parse as a JSON object carrying the stable
/// envelope keys, and the `kind` strings must come from the schema.
#[test]
fn jsonl_trace_lines_are_schema_valid() {
    let path = std::env::temp_dir().join(format!("ax_trace_{}.jsonl", std::process::id()));
    let l = lib();
    let matmul = MatMul::new(4);
    let telemetry = Telemetry::new();
    telemetry.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
    Campaign::new("telemetry-jsonl", &l)
        .benchmark(&matmul)
        .agents(&[AgentKind::QLearning])
        .seeds(SeedRange::new(0, 2))
        .options(opts(150))
        .budget(60)
        .telemetry(&telemetry)
        .run()
        .unwrap();
    telemetry.flush();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let known = [
        "campaign_start",
        "benchmark_ready",
        "budget_grant",
        "budget_exhausted",
        "run_paused",
        "run_complete",
        "cell_eliminated",
        "bracket_start",
        "cell_revived",
        "rung_recorded",
        "cell_parked",
        "rung_promoted",
        "campaign_complete",
    ];
    let mut lines = 0u64;
    for line in text.lines() {
        let json = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        json.get("source").expect("source").as_u64().unwrap();
        json.get("seq").expect("seq").as_u64().unwrap();
        let kind = json.get("kind").expect("kind").as_str().unwrap().to_owned();
        assert!(known.contains(&kind.as_str()), "unknown kind {kind}");
        lines += 1;
    }
    assert_eq!(lines, telemetry.events_emitted());
    assert!(text.lines().any(|l| l.contains("\"campaign_complete\"")));
}

/// The ring buffer keeps the canonical order even when the coordinator
/// and run sources interleave arbitrarily during emission.
#[test]
fn canonical_event_order_groups_by_source() {
    let (_, t) = traced_campaign(false);
    let events = t.events();
    let keys: Vec<(u32, u64)> = events.iter().map(|e| (e.source, e.seq)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert!(matches!(events[0].kind, EventKind::CampaignStart { .. }));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Enabling tracing must never change what a campaign computes: the
    /// reports agree on everything except the `telemetry` section itself.
    #[test]
    fn tracing_never_changes_the_campaign_report(
        budget in 40u64..200,
        seeds in 1u64..3,
        halving in 0u32..2,
    ) {
        let run = |telemetry: &Telemetry| {
            let l = lib();
            let (matmul, fir) = (MatMul::new(4), Fir::new(40));
            let mut c = Campaign::new("tracing-transparency", &l)
                .benchmark(&matmul)
                .benchmark(&fir)
                .agents(&[AgentKind::QLearning, AgentKind::Sarsa])
                .seeds(SeedRange::new(0, seeds))
                .options(opts(300))
                .budget(budget)
                .sequential(true)
                .telemetry(telemetry);
            if halving == 1 {
                c = c.policy(BudgetPolicy::SuccessiveHalving {
                    rounds: 2,
                    keep_fraction: 0.5,
                });
            }
            c.run().unwrap()
        };
        let plain = run(&Telemetry::disabled());
        let traced = run(&Telemetry::new());
        prop_assert!(plain.telemetry.is_none());
        prop_assert!(traced.telemetry.is_some());
        prop_assert_eq!(strip(&plain), strip(&traced));
    }
}
