//! Cross-crate end-to-end tests: operator library → instrumented execution →
//! evaluation → exploration, on the paper's benchmarks.

use axdse_suite::ax_dse::backend::EvalContext;
use axdse_suite::ax_dse::config::AxConfig;
use axdse_suite::ax_dse::explore::{AgentKind, ExplorationOutcome, ExploreOptions};
use axdse_suite::ax_dse::Evaluator;
use axdse_suite::ax_operators::{AdderId, BitWidth, MulId, OperatorLibrary};
use axdse_suite::ax_workloads::fir::{Fir, DEFAULT_TAPS};
use axdse_suite::ax_workloads::matmul::MatMul;
use axdse_suite::ax_workloads::Workload;

fn lib() -> OperatorLibrary {
    OperatorLibrary::evoapprox()
}

/// The paper's Q-learning exploration through the campaign primitive.
fn explore_qlearning(
    workload: &dyn Workload,
    lib: &OperatorLibrary,
    opts: &ExploreOptions,
) -> ExplorationOutcome {
    let ctx = EvalContext::new(workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark builds against the library");
    axdse_suite::ax_dse::campaign::explore(&ctx, opts, AgentKind::QLearning)
}

/// The paper's Table III MatMul 10×10 extremes are op-count × per-operator
/// deltas: Δpower max = 1000 · (0.391 − 0.0041 + 0.033 − 0.0015) = 418.4 mW
/// and Δtime max = 1000 · (1.43 − 0.11 + 0.63 − 0.11) = 1840 ns. Our
/// substrate must reproduce those numbers exactly.
#[test]
fn matmul10_full_config_matches_paper_maxima() {
    let mut ev = Evaluator::new(&MatMul::new(10), &lib(), 42).unwrap();
    let dims = ev.dims();
    let full = AxConfig {
        adder: AdderId(dims.n_add - 1),
        mul: MulId(dims.n_mul - 1),
        vars: (1 << dims.n_vars) - 1,
    };
    let m = ev.evaluate(&full).unwrap();
    assert!(
        (m.delta_power - 418.4).abs() < 1e-6,
        "d-power {}",
        m.delta_power
    );
    assert!(
        (m.delta_time - 1840.0).abs() < 1e-6,
        "d-time {}",
        m.delta_time
    );
}

/// The paper's solution configuration for MatMul 10×10 (adder 00M,
/// multiplier 17MJ, everything approximated) yields Δpower 415.3 mW and
/// Δtime 1780 ns — and must respect the accuracy budget, exactly as the
/// paper reports.
#[test]
fn matmul10_paper_solution_config_is_feasible() {
    let l = lib();
    let mut ev = Evaluator::new(&MatMul::new(10), &l, 42).unwrap();
    let (adder, _) = l.adder_by_name(BitWidth::W8, "00M").unwrap();
    let (mul, _) = l.multiplier_by_name(BitWidth::W8, "17MJ").unwrap();
    let dims = ev.dims();
    let config = AxConfig {
        adder,
        mul,
        vars: (1 << dims.n_vars) - 1,
    };
    let m = ev.evaluate(&config).unwrap();
    assert!(
        (m.delta_power - 415.3).abs() < 1e-6,
        "d-power {}",
        m.delta_power
    );
    assert!(
        (m.delta_time - 1780.0).abs() < 1e-6,
        "d-time {}",
        m.delta_time
    );
    let acc_th = 0.4 * ev.mean_abs_output();
    assert!(
        m.delta_acc <= acc_th,
        "paper solution config must be within budget: {} > {acc_th}",
        m.delta_acc
    );
}

/// FIR cost structure: FIR-200 costs exactly twice FIR-100 (the paper's
/// Δpower maxima are 34 699.1 ≈ 2 × 17 344.4).
#[test]
fn fir_costs_scale_linearly_with_samples() {
    let l = lib();
    let ev100 = Evaluator::new(&Fir::new(100), &l, 42).unwrap();
    let ev200 = Evaluator::new(&Fir::new(200), &l, 42).unwrap();
    assert!((ev200.precise_power() - 2.0 * ev100.precise_power()).abs() < 1e-6);
    assert!((ev200.precise_time() - 2.0 * ev100.precise_time()).abs() < 1e-6);
    // 1 700 MACs per 100 samples at 17 taps.
    let per_mac = 10.76 + 0.072;
    assert!(
        (ev100.precise_power() - 100.0 * DEFAULT_TAPS as f64 * per_mac).abs() < 1e-6,
        "precise power {}",
        ev100.precise_power()
    );
}

/// An exploration over each paper benchmark produces internally consistent
/// summaries (min ≤ solution ≤ max on every metric, named operators, one
/// trace entry per logged step).
#[test]
fn paper_benchmark_explorations_are_consistent() {
    let l = lib();
    let opts = ExploreOptions {
        max_steps: 300,
        ..Default::default()
    };
    for wl in axdse_suite::ax_workloads::paper_benchmarks() {
        // Keep the 50×50 matmul out of slow debug runs.
        if wl.name().contains("50") {
            continue;
        }
        let o = explore_qlearning(wl.as_ref(), &l, &opts);
        let s = &o.summary;
        for (label, m) in [("power", s.power), ("time", s.time), ("acc", s.accuracy)] {
            assert!(
                m.min <= m.solution + 1e-9,
                "{}: {label} min > solution",
                s.benchmark
            );
            assert!(
                m.solution <= m.max + 1e-9,
                "{}: {label} solution > max",
                s.benchmark
            );
        }
        assert_eq!(o.trace.len(), o.log.len(), "{}", s.benchmark);
        assert!(o.distinct_configs > 0 && o.distinct_configs <= o.trace.len() as u64);
        assert!(!s.adder_name.is_empty() && !s.mul_name.is_empty());
    }
}

/// Evaluating every configuration of a small space stays within the cache,
/// and re-running an exploration costs zero new evaluations.
#[test]
fn evaluation_cache_covers_whole_space() {
    let l = lib();
    let mut ev = Evaluator::new(&MatMul::new(3), &l, 9).unwrap();
    let dims = ev.dims();
    for c in AxConfig::enumerate(dims) {
        ev.evaluate(&c).unwrap();
    }
    assert_eq!(ev.distinct_evaluations(), dims.cardinality() as u64);
    for c in AxConfig::enumerate(dims) {
        ev.evaluate(&c).unwrap();
    }
    assert_eq!(ev.distinct_evaluations(), dims.cardinality() as u64);
    assert_eq!(ev.cache_hits(), dims.cardinality() as u64);
}

/// Operator monotonicity across a whole benchmark: walking the multiplier
/// ladder (with everything selected) must not decrease power savings, and
/// the precise end must sit at zero error.
#[test]
fn multiplier_ladder_is_monotone_in_power_on_matmul() {
    let l = lib();
    let mut ev = Evaluator::new(&MatMul::new(5), &l, 21).unwrap();
    let dims = ev.dims();
    let mut prev_power = -1.0;
    for mul_idx in 0..dims.n_mul {
        let c = AxConfig {
            adder: AdderId(0),
            mul: MulId(mul_idx),
            vars: (1 << dims.n_vars) - 1,
        };
        let m = ev.evaluate(&c).unwrap();
        assert!(
            m.delta_power >= prev_power - 1e-9,
            "power saving dropped at multiplier {mul_idx}"
        );
        prev_power = m.delta_power;
        if mul_idx == 0 {
            assert_eq!(m.delta_acc, 0.0);
        }
    }
}

/// The acceptance scenario of the campaign redesign: a multi-benchmark,
/// multi-agent campaign racing under one global evaluation budget, loaded
/// from the checked-in JSON spec that `repro run` executes.
#[test]
fn checked_in_campaign_spec_runs_end_to_end() {
    use axdse_suite::ax_dse::campaign::{ExperimentSpec, NullObserver};
    use axdse_suite::ax_surrogate::run_spec;

    let text = std::fs::read_to_string("examples/campaign_matmul.json").unwrap();
    let mut spec = ExperimentSpec::from_json_str(&text).unwrap();
    // The CI-style smoke clamp `repro run --smoke` applies.
    spec.explore.max_steps = spec.explore.max_steps.min(120);
    spec.seeds.count = spec.seeds.count.min(1);

    let report = run_spec(&lib(), &spec, None, &NullObserver).unwrap();
    assert_eq!(
        report.cells.len(),
        spec.benchmarks.len() * spec.agents.len()
    );
    assert_eq!(report.portfolios.len(), spec.benchmarks.len());
    assert_eq!(report.budget.cap, spec.budget);
    assert!(report.budget.spent > 0);
    assert!(
        report.tier.is_some(),
        "the spec names a tiered backend, so tier usage must be reported"
    );
    for p in &report.portfolios {
        assert_eq!(p.entries.len(), spec.agents.len());
        assert!(p.shared_distinct > 0);
    }
    assert!(report.best_overall().is_some());
}

/// A tight global budget cooperatively stops a multi-benchmark campaign:
/// spending lands at the cap plus at most one in-flight step per run.
#[test]
fn global_budget_caps_a_multi_benchmark_campaign() {
    use axdse_suite::ax_dse::campaign::{Campaign, SeedRange};
    use axdse_suite::ax_dse::explore::AgentKind;
    use axdse_suite::ax_workloads::dot::DotProduct;

    let l = lib();
    let (wa, wb) = (MatMul::new(4), DotProduct::new(8));
    let report = Campaign::new("budget-e2e", &l)
        .benchmark(&wa)
        .benchmark(&wb)
        .agent(AgentKind::QLearning)
        .seeds(SeedRange::new(0, 2))
        .options(ExploreOptions {
            max_steps: 10_000,
            ..Default::default()
        })
        .budget(50)
        .run()
        .unwrap();
    assert!(report.budget.exhausted());
    assert!(report.budget.stopped_runs > 0, "{:?}", report.budget);
    assert_eq!(report.budget.spent, 50, "reported spend clamps to the cap");
    // 4 runs, each may overshoot by at most one step's worth of designs —
    // asserted on the raw charge total, which the clamp does not hide.
    assert!(report.budget.overshoot <= 4 * 20, "{:?}", report.budget);
    assert!(report.budget.charged() < 50 + 4 * 20);
}
