//! The paper's headline experiment: Matrix Multiplication 10×10.
//!
//! ```text
//! cargo run --release --example matmul_exploration
//! ```
//!
//! Reproduces one column of Table III plus the Figure 2 trend lines and the
//! Figure 4 reward bins for the MatMul 10×10 benchmark.

use ax_dse::analysis::{linear_trend, reward_curve};
use ax_dse::backend::EvalContext;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::report::{ascii_table, fmt_metric};
use ax_operators::OperatorLibrary;
use ax_workloads::matmul::MatMul;

fn main() {
    let lib = OperatorLibrary::evoapprox();
    let opts = ExploreOptions::default(); // the paper's 10 000-step setup
    let ctx = EvalContext::new(
        &MatMul::new(10),
        std::sync::Arc::new(lib.clone()),
        opts.input_seed,
    )
    .expect("benchmark prepares");
    let outcome = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);

    // Table III column.
    let s = &outcome.summary;
    let rows = vec![
        vec!["d-power min (mW)".into(), fmt_metric(s.power.min)],
        vec!["d-power solution".into(), fmt_metric(s.power.solution)],
        vec!["d-power max".into(), fmt_metric(s.power.max)],
        vec!["d-time min (ns)".into(), fmt_metric(s.time.min)],
        vec!["d-time solution".into(), fmt_metric(s.time.solution)],
        vec!["d-time max".into(), fmt_metric(s.time.max)],
        vec!["acc-degr min".into(), fmt_metric(s.accuracy.min)],
        vec!["acc-degr solution".into(), fmt_metric(s.accuracy.solution)],
        vec!["acc-degr max".into(), fmt_metric(s.accuracy.max)],
        vec!["adder type".into(), s.adder_name.clone()],
        vec!["multiplier type".into(), s.mul_name.clone()],
        vec!["steps".into(), s.steps.to_string()],
    ];
    println!("{}", ascii_table(&["metric", "matmul-10x10"], &rows));

    // Figure 2: trend lines over the exploration.
    let series = outcome.figure_series();
    let [power_t, time_t, acc_t] = series.trends();
    println!(
        "trend slopes per step (Figure 2): power {:+.4}, time {:+.4}, accuracy {:+.4}",
        power_t.0, time_t.0, acc_t.0
    );

    // Figure 4: average reward per 100 steps.
    let bins = reward_curve(&outcome.trace, 100);
    let (slope, _) = linear_trend(&bins);
    println!(
        "reward bins (Figure 4): {:?}",
        bins.iter()
            .map(|b| (b * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("reward trend slope per bin: {slope:+.3} (positive = the agent learns)");
}
