//! Quickstart: explore the approximate design space of a small kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the pre-characterised operator library, runs the paper's
//! Q-learning exploration on an 8-element dot product and prints the
//! discovered trade-off.

use ax_dse::backend::EvalContext;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_operators::OperatorLibrary;
use ax_workloads::dot::DotProduct;

fn main() {
    // 1. The operator database: Tables I & II of the paper (12 adders,
    //    12 multipliers, sorted by increasing error).
    let lib = OperatorLibrary::evoapprox();

    // 2. A benchmark kernel. Any `ax_workloads::Workload` works; dot product
    //    is the smallest.
    let workload = DotProduct::new(8);

    // 3. Run the RL exploration with the paper's defaults (10 000-step cap,
    //    50 % power/time gain thresholds, 0.4x accuracy budget) through the
    //    campaign layer's single-run primitive. (Grids of benchmarks,
    //    agents and seeds go through `ax_dse::campaign::Campaign` — see
    //    examples/campaign_matmul.rs.)
    let opts = ExploreOptions {
        max_steps: 2_000,
        ..Default::default()
    };
    let ctx = EvalContext::new(&workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark prepares");
    let outcome = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);

    let s = &outcome.summary;
    println!("benchmark         : {}", s.benchmark);
    println!(
        "steps taken       : {} ({:?})",
        s.steps, outcome.stop_reason
    );
    println!("distinct configs  : {}", outcome.distinct_configs);
    println!(
        "thresholds        : acc <= {:.2}, d-power >= {:.2} mW, d-time >= {:.2} ns",
        outcome.thresholds.acc_th, outcome.thresholds.power_th, outcome.thresholds.time_th
    );
    println!(
        "solution operators: adder {}, multiplier {}",
        s.adder_name, s.mul_name
    );
    println!(
        "solution          : d-power {:.2} mW, d-time {:.2} ns, accuracy loss {:.2}",
        s.power.solution, s.time.solution, s.accuracy.solution
    );
    println!(
        "explored extremes : d-power [{:.2}, {:.2}], d-time [{:.2}, {:.2}]",
        s.power.min, s.power.max, s.time.min, s.time.max
    );
}
