//! Multi-objective analysis: Pareto front and explorer comparison.
//!
//! ```text
//! cargo run --release --example pareto_analysis
//! ```
//!
//! Runs the Q-learning exploration and the classic baselines (random search,
//! hill climbing, simulated annealing, genetic algorithm) on the same
//! benchmark, extracts the Pareto-optimal configurations from everything
//! evaluated, and compares explorers by feasible hypervolume.

use ax_agents::search::{
    genetic_algorithm, hill_climb, random_search, simulated_annealing, AnnealingOptions,
    GeneticOptions,
};
use ax_dse::analysis::{hypervolume_2d, pareto_front};
use ax_dse::backend::EvalContext;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::report::ascii_table;
use ax_dse::search_adapter::DseSearchSpace;
use ax_dse::thresholds::ThresholdRule;
use ax_dse::Evaluator;
use ax_operators::OperatorLibrary;
use ax_workloads::matmul::MatMul;

fn main() {
    let lib = OperatorLibrary::evoapprox();
    let workload = MatMul::new(8);
    let budget = 1_500u64;

    // --- Q-learning ---
    let opts = ExploreOptions {
        max_steps: budget,
        ..Default::default()
    };
    let ctx = EvalContext::new(&workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark prepares");
    let outcome = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);
    let acc_th = outcome.thresholds.acc_th;
    let (pp, pt) = (
        outcome.evaluator.precise_power(),
        outcome.evaluator.precise_time(),
    );

    // Pareto front over everything Q-learning evaluated.
    let evaluated = outcome.evaluator.evaluated();
    let front = pareto_front(&evaluated);
    println!(
        "Q-learning evaluated {} distinct configurations; Pareto front has {} points",
        evaluated.len(),
        front.len()
    );
    let mut front_rows: Vec<Vec<String>> = front
        .iter()
        .filter(|(_, m)| m.delta_acc <= acc_th)
        .map(|(c, m)| {
            vec![
                c.to_string(),
                format!("{:.1}", m.delta_power),
                format!("{:.1}", m.delta_time),
                format!("{:.2}", m.delta_acc),
            ]
        })
        .collect();
    front_rows.sort_by(|a, b| {
        b[1].parse::<f64>()
            .unwrap()
            .total_cmp(&a[1].parse().unwrap())
    });
    front_rows.truncate(10);
    println!(
        "{}",
        ascii_table(
            &["config", "d-power mW", "d-time ns", "acc loss"],
            &front_rows
        )
    );

    // --- Baselines on the identical scalarised problem ---
    let hypervolume = |ev: &Evaluator| -> f64 {
        let pts: Vec<(f64, f64)> = ev
            .evaluated()
            .iter()
            .filter(|(_, m)| m.delta_acc <= acc_th)
            .map(|(_, m)| (m.delta_power / pp, m.delta_time / pt))
            .collect();
        hypervolume_2d(&pts, (0.0, 0.0))
    };

    let mut rows = vec![vec![
        "q-learning".to_string(),
        format!("{:.4}", hypervolume(&outcome.evaluator)),
        outcome.trace.len().to_string(),
    ]];
    type Runner<'a> = (&'a str, Box<dyn Fn(&mut DseSearchSpace<'_>) -> u64>);
    let runners: Vec<Runner<'_>> = vec![
        (
            "random",
            Box::new(move |sp| random_search(sp, budget, 1).evaluations),
        ),
        (
            "hill-climb",
            Box::new(move |sp| hill_climb(sp, budget, 32, 1).evaluations),
        ),
        (
            "sim-anneal",
            Box::new(move |sp| {
                simulated_annealing(
                    sp,
                    AnnealingOptions {
                        budget,
                        t_initial: 0.5,
                        t_final: 0.01,
                        seed: 1,
                    },
                )
                .evaluations
            }),
        ),
        (
            "genetic",
            Box::new(move |sp| {
                genetic_algorithm(
                    sp,
                    GeneticOptions {
                        population: 20,
                        generations: 80,
                        seed: 1,
                        ..Default::default()
                    },
                )
                .evaluations
            }),
        ),
    ];
    for (name, run) in runners {
        let mut ev = Evaluator::new(&workload, &lib, opts.input_seed).expect("evaluator");
        let th = ThresholdRule::paper().calibrate(&ev);
        let evals = {
            let mut space = DseSearchSpace::new(&mut ev, th);
            run(&mut space)
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", hypervolume(&ev)),
            evals.to_string(),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["explorer", "feasible hypervolume", "evaluations"], &rows)
    );
}
