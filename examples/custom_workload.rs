//! Plugging a user-defined kernel and operator library into the DSE.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! Defines a new workload (Horner evaluation of a degree-3 polynomial), a
//! custom three-operator library, and explores the combined space — the
//! extension path the paper's conclusion calls for ("a larger set of
//! applications").

use ax_dse::backend::EvalContext;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_operators::{
    AdderKind, AdderModel, BitWidth, MulKind, MulModel, OperatorLibrary, OperatorSpec,
};
use ax_vm::ir::{Program, ProgramBuilder};
use ax_vm::VmError;
use ax_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `y_i = ((c3·x + c2)·x + c1)·x + c0` over a batch of 4-bit x values.
struct Horner {
    n: usize,
}

impl Workload for Horner {
    fn name(&self) -> String {
        format!("horner3-{}", self.n)
    }

    fn build(&self) -> Result<Program, VmError> {
        let n = self.n as u32;
        let mut pb = ProgramBuilder::new(self.name(), BitWidth::W8, BitWidth::W8);
        let x = pb.input("x", n);
        let coeff = pb.input("coeff", 4); // c0..c3, small positive values
        let acc = pb.temp("acc", 1);
        let prod = pb.temp("prod", 1);
        let y = pb.output("y", n);
        for i in 0..n {
            pb.copy(acc.at(0), coeff.at(3));
            for c in (0..3).rev() {
                pb.mul(prod.at(0), acc.at(0), x.at(i), 4); // Q4 rescale
                pb.add(acc.at(0), prod.at(0), coeff.at(c));
            }
            pb.copy(y.at(i), acc.at(0));
        }
        pb.build()
    }

    fn inputs(&self, seed: u64) -> Vec<(String, Vec<i64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = (0..self.n).map(|_| rng.gen_range(0..16)).collect();
        vec![("x".to_owned(), xs), ("coeff".to_owned(), vec![3, 5, 2, 1])]
    }
}

fn main() {
    // A minimal custom library: one exact and two approximate operators per
    // class, with made-up (but plausible) power/time characterisation.
    let lib = OperatorLibrary::builder()
        .adder(
            OperatorSpec::new("exact", BitWidth::W8, 0.0, 0.04, 0.7),
            AdderModel::precise(BitWidth::W8),
        )
        .adder(
            OperatorSpec::new("loa4", BitWidth::W8, 1.5, 0.018, 0.35),
            AdderModel::new(AdderKind::Loa { approx_bits: 4 }, BitWidth::W8),
        )
        .adder(
            OperatorSpec::new("set1-6", BitWidth::W8, 13.0, 0.006, 0.2),
            AdderModel::new(AdderKind::SetOne { cut_bits: 6 }, BitWidth::W8),
        )
        .multiplier(
            OperatorSpec::new("exact", BitWidth::W8, 0.0, 0.40, 1.5),
            MulModel::precise(BitWidth::W8),
        )
        .multiplier(
            OperatorSpec::new("drum4", BitWidth::W8, 5.8, 0.15, 1.0),
            MulModel::new(MulKind::Drum { k: 4 }, BitWidth::W8),
        )
        .multiplier(
            OperatorSpec::new("mitchell", BitWidth::W8, 3.8, 0.2, 1.1),
            MulModel::new(MulKind::Mitchell, BitWidth::W8),
        )
        .build();

    let workload = Horner { n: 32 };
    let opts = ExploreOptions {
        max_steps: 2_000,
        ..Default::default()
    };
    let ctx = EvalContext::new(&workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark prepares");
    let outcome = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);

    let s = &outcome.summary;
    println!("custom workload    : {}", s.benchmark);
    println!(
        "custom library     : {} adders x {} multipliers",
        lib.adders(BitWidth::W8).len(),
        lib.multipliers(BitWidth::W8).len()
    );
    println!(
        "steps / stop       : {} / {:?}",
        s.steps, outcome.stop_reason
    );
    println!(
        "solution           : adder {}, multiplier {}",
        s.adder_name, s.mul_name
    );
    println!(
        "solution deltas    : power {:.2} mW, time {:.2} ns, accuracy {:.2} (budget {:.2})",
        s.power.solution, s.time.solution, s.accuracy.solution, outcome.thresholds.acc_th
    );
}
