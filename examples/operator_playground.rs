//! Characterising approximate operator families.
//!
//! ```text
//! cargo run --release --example operator_playground
//! ```
//!
//! Sweeps the configurable operator families across their parameters,
//! printing the error metrics the approximate-computing literature reports
//! (MRED, MAE, error rate, worst case) — the tooling behind the paper's
//! Tables I and II.

use ax_dse::report::ascii_table;
use ax_operators::multipliers::Po2Mode;
use ax_operators::{
    characterize_adder, characterize_multiplier, AdderKind, AdderModel, BitWidth, CharacterizeMode,
    MulKind, MulModel,
};

fn main() {
    // Adder families at 8 bits, exhaustively characterised (65 536 pairs).
    let mut rows = Vec::new();
    for k in [2u32, 4, 6] {
        for (label, kind) in [
            (format!("loa({k})"), AdderKind::Loa { approx_bits: k }),
            (format!("trunc({k})"), AdderKind::Trunc { cut_bits: k }),
            (format!("set1({k})"), AdderKind::SetOne { cut_bits: k }),
            (
                format!("carrycut({k},2)"),
                AdderKind::CarryCut {
                    cut: k,
                    window: 2.min(k),
                },
            ),
        ] {
            let model = AdderModel::new(kind, BitWidth::W8);
            let p = characterize_adder(&model, CharacterizeMode::Exhaustive);
            rows.push(vec![
                label,
                format!("{:.4}", p.mred_pct),
                format!("{:.3}", p.mae),
                format!("{:.3}", p.error_rate),
                p.wce.to_string(),
            ]);
        }
    }
    println!("8-bit adder families (exhaustive):");
    println!(
        "{}",
        ascii_table(&["family", "MRED %", "MAE", "error rate", "WCE"], &rows)
    );

    // Multiplier families at 8 bits.
    let mut rows = Vec::new();
    let cases: Vec<(String, MulKind)> = vec![
        ("mitchell".into(), MulKind::Mitchell),
        ("logiter(2)".into(), MulKind::LogIter { iterations: 2 }),
        ("drum(4)".into(), MulKind::Drum { k: 4 }),
        ("drum(6)".into(), MulKind::Drum { k: 6 }),
        ("bam(4)".into(), MulKind::BrokenArray { rows: 4 }),
        ("truncres(6)".into(), MulKind::TruncResult { cut_bits: 6 }),
        ("truncpp(6)".into(), MulKind::TruncPp { cut_columns: 6 }),
        ("po2(floor)".into(), MulKind::Po2(Po2Mode::Floor)),
        ("po2(comp)".into(), MulKind::Po2(Po2Mode::Compensated)),
    ];
    for (label, kind) in cases {
        let model = MulModel::new(kind, BitWidth::W8);
        let p = characterize_multiplier(&model, CharacterizeMode::Exhaustive);
        rows.push(vec![
            label,
            format!("{:.4}", p.mred_pct),
            format!("{:.1}", p.mae),
            format!("{:.3}", p.error_rate),
        ]);
    }
    println!("8-bit multiplier families (exhaustive):");
    println!(
        "{}",
        ascii_table(&["family", "MRED %", "MAE", "error rate"], &rows)
    );

    // Scale invariance: DRUM's relative error is magnitude-independent,
    // which is why the library uses it for the small-MRED 32-bit entries.
    println!("DRUM(6) at 32 bits, Monte-Carlo:");
    let model = MulModel::new(MulKind::Drum { k: 6 }, BitWidth::W32);
    let p = characterize_multiplier(
        &model,
        CharacterizeMode::MonteCarlo {
            samples: 500_000,
            seed: 7,
        },
    );
    println!(
        "  MRED {:.4}% over {} samples (8-bit value above: same ~1.3-1.5%)",
        p.mred_pct, p.samples
    );
}
