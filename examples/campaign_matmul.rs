//! Declarative campaigns: a whole experiment as a checked-in JSON file.
//!
//! ```text
//! cargo run --release --example campaign_matmul
//! ```
//!
//! Loads `examples/campaign_matmul.json` — a multi-benchmark, multi-agent
//! campaign racing under one global evaluation budget through the tiered
//! (surrogate-prefiltered) backend — and executes it with the polymorphic
//! [`ax_dse::campaign::Campaign`] driver, streaming progress through an
//! [`Observer`]. The same file runs from the CLI: `repro run
//! examples/campaign_matmul.json`.

use ax_agents::train::StopReason;
use ax_dse::campaign::{ExperimentSpec, Observer};
use ax_dse::explore::AgentKind;
use ax_operators::OperatorLibrary;
use ax_surrogate::run_spec;

/// Prints one line per finished exploration.
struct Progress;

impl Observer for Progress {
    fn on_run_complete(
        &self,
        benchmark: &str,
        agent: AgentKind,
        seed: u64,
        stop: StopReason,
        steps: u64,
    ) {
        println!(
            "  {benchmark:12} {:16} seed {seed}: {stop:?} after {steps} steps",
            agent.name()
        );
    }

    fn on_budget_exhausted(&self, spent: u64) {
        println!("  global budget exhausted after {spent} distinct designs");
    }
}

fn main() {
    let text = std::fs::read_to_string("examples/campaign_matmul.json")
        .expect("run from the repository root");
    let mut spec = ExperimentSpec::from_json_str(&text).expect("valid spec");
    // Keep the example snappy; drop this line for the full experiment.
    spec.explore.max_steps = spec.explore.max_steps.min(400);

    let lib = OperatorLibrary::evoapprox();
    let report = run_spec(&lib, &spec, None, &Progress).expect("campaign runs");

    println!(
        "\nbudget: {} of {:?} designs spent, {} run(s) budget-stopped",
        report.budget.spent, report.budget.cap, report.budget.stopped_runs
    );
    if let Some(tier) = &report.tier {
        println!(
            "tiers : {:.0}% of distinct queries skipped the interpreter",
            100.0 * tier.avoided_exact_rate()
        );
    }
    for p in &report.portfolios {
        let w = p.winner();
        println!(
            "{:12}: winner {} (seed {}, score {:.3}, {})",
            p.benchmark,
            w.kind.name(),
            w.seed,
            w.score,
            if w.feasible { "feasible" } else { "infeasible" }
        );
    }
    if let Some((i, best)) = report.best_overall() {
        println!(
            "best overall: {} on {}",
            best.kind.name(),
            report.portfolios[i].benchmark
        );
    }
}
