//! The paper's second benchmark: FIR low-pass filtering of white noise.
//!
//! ```text
//! cargo run --release --example fir_exploration
//! ```
//!
//! Runs the FIR-100 exploration (Table III column 3, Figure 3) and shows the
//! filter itself: the precise run's smoothing effect and how the solution
//! configuration degrades it.

use ax_dse::backend::EvalContext;
use ax_dse::config::AxConfig;
use ax_dse::explore::{AgentKind, ExploreOptions};
use ax_dse::Evaluator;
use ax_operators::OperatorLibrary;
use ax_workloads::fir::Fir;
use ax_workloads::Workload;

fn main() {
    let lib = OperatorLibrary::evoapprox();
    let workload = Fir::new(100);

    // Show the kernel itself first.
    let program = workload.build().expect("FIR builds");
    let stats = program.stats();
    println!(
        "FIR-100: {} instructions ({} muls on 32-bit operators, {} adds on 16-bit operators)",
        stats.instructions, stats.muls, stats.adds
    );
    println!(
        "approximable variables: {:?}",
        program
            .approximable_vars()
            .iter()
            .map(|&v| program.var(v).name().to_owned())
            .collect::<Vec<_>>()
    );

    let opts = ExploreOptions::default();
    let ctx = EvalContext::new(&workload, std::sync::Arc::new(lib.clone()), opts.input_seed)
        .expect("benchmark prepares");
    let outcome = ax_dse::campaign::explore(&ctx, &opts, AgentKind::QLearning);
    let s = &outcome.summary;
    println!(
        "\nexploration stopped after {} steps ({:?})",
        s.steps, outcome.stop_reason
    );
    println!(
        "solution: adder {}, multiplier {}",
        s.adder_name, s.mul_name
    );
    println!(
        "solution deltas: power {:.1} mW, time {:.1} ns, accuracy {:.2} (threshold {:.2})",
        s.power.solution, s.time.solution, s.accuracy.solution, outcome.thresholds.acc_th
    );

    // Compare a few output samples: precise vs the solution configuration.
    let last = outcome.trace.last().expect("non-empty trace");
    let mut evaluator = Evaluator::new(&workload, &lib, opts.input_seed).expect("evaluator");
    let _ = evaluator.evaluate(&last.config).expect("evaluate solution");
    let precise_m = evaluator
        .evaluate(&AxConfig::precise())
        .expect("evaluate precise");
    println!(
        "\nprecise run:  power {:.1} mW, time {:.1} ns (reference)",
        precise_m.power, precise_m.time_ns
    );
    println!(
        "solution run: power {:.1} mW, time {:.1} ns, MAE {:.2}",
        last.metrics.power, last.metrics.time_ns, last.metrics.delta_acc
    );
    println!(
        "\nFigure 3 shape check: the paper reports the FIR agent learning poorly;\n\
         this exploration {} the 10 000-step cap (stop reason {:?}).",
        if s.steps == opts.max_steps {
            "exhausted"
        } else {
            "stopped before"
        },
        outcome.stop_reason
    );
}
